"""The pluggable attack registry.

An *attack* is a named, parameterized misbehaviour a scenario can plant
on a subset of receivers.  Implementations register themselves at module
import time with the :func:`attack` decorator — exactly the discipline
the kind-id registry enforces for payload kinds (lint rule K301): every
process, fork or spawn shard worker imports the same modules in the same
order and therefore sees an identical catalog, so an attack name means
the same thing on every side of a process boundary.

Two roles exist:

* ``"node"`` — the implementation replaces the attacker's *gossip node*
  class (a :class:`~repro.core.heap.HeapGossipNode` subclass built with
  the honest constructor signature plus the attack parameter as the
  eighth positional argument);
* ``"sampler"`` — the implementation replaces the attacker's
  *peer-sampling service* (a
  :class:`~repro.membership.peer_sampling.PeerSamplingService` subclass)
  while the gossip node stays honest.  Sampler attacks require
  ``membership="cyclon"`` — under the full-membership directory there is
  no exchange to poison.

The catalog is what ``repro attacks --list`` prints and what
:class:`~repro.adversary.mix.AttackMix` validates names against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: The two extension points an attack can occupy.
ROLES = ("node", "sampler")


@dataclass(frozen=True, slots=True)
class Attack:
    """One registered attack: implementation plus its catalog entry."""

    name: str
    #: Which extension point the implementation occupies (see ROLES).
    role: str
    #: The protocol channel the attack exploits (catalog column).
    channel: str
    #: What the audit / analysis side can(not) do about it (catalog column).
    detection: str
    #: Attack parameter used when a mix names no override; always in (0, 1].
    default_param: float
    #: What the parameter means for this attack.
    param_doc: str
    #: Membership substrate the attack needs, or None for any.
    requires_membership: Optional[str]
    #: The implementing class (node or sampler subclass, per ``role``).
    impl: type

    def jsonable(self) -> Dict[str, object]:
        """Machine-readable catalog entry (everything but the class
        object; the implementation is named, not shipped)."""
        return {
            "name": self.name,
            "role": self.role,
            "channel": self.channel,
            "detection": self.detection,
            "default_param": self.default_param,
            "param_doc": self.param_doc,
            "requires_membership": self.requires_membership,
            "impl": f"{self.impl.__module__}.{self.impl.__qualname__}",
        }


#: name -> Attack, populated at import time by the ``@attack`` decorator.
_ATTACKS: Dict[str, Attack] = {}


def attack(name: str, *, role: str = "node", channel: str, detection: str,
           default_param: float, param_doc: str,
           requires_membership: Optional[str] = None):
    """Class decorator registering an attack implementation.

    Raises on a duplicate name or an unknown role — two implementations
    silently sharing a name would make scenario configs ambiguous.
    Registration must happen at module import time (the same discipline
    as :func:`repro.net.message.register_kind`) so every shard worker
    holds an identical catalog.
    """
    if role not in ROLES:
        raise ValueError(f"unknown attack role {role!r}; known: {ROLES}")
    if not 0.0 < default_param <= 1.0:
        raise ValueError(f"attack {name!r}: default_param must be in (0, 1], "
                         f"got {default_param!r}")

    def decorator(cls: type) -> type:
        if name in _ATTACKS:
            raise ValueError(f"attack {name!r} is already registered "
                             f"({_ATTACKS[name].impl.__qualname__})")
        _ATTACKS[name] = Attack(name=name, role=role, channel=channel,
                                detection=detection,
                                default_param=default_param,
                                param_doc=param_doc,
                                requires_membership=requires_membership,
                                impl=cls)
        return cls

    return decorator


def get_attack(name: str) -> Attack:
    """The registered attack behind ``name``; raises KeyError if unknown."""
    try:
        return _ATTACKS[name]
    except KeyError:
        raise KeyError(f"unknown attack {name!r}; known: "
                       f"{', '.join(attack_names()) or 'none'}") from None


def is_registered(name: str) -> bool:
    return name in _ATTACKS


def attack_names() -> Tuple[str, ...]:
    """All registered attack names, sorted."""
    return tuple(sorted(_ATTACKS))


def attack_catalog() -> Tuple[Attack, ...]:
    """The full catalog, sorted by name (``repro attacks --list``)."""
    return tuple(_ATTACKS[name] for name in attack_names())
