"""Weighted attack mixes: the adversary half of a scenario's identity.

An :class:`AttackMix` says *what fraction of the receivers misbehave,
how, with which parameters, and where they sit* — one frozen value that
rides :class:`~repro.workloads.scenario.ScenarioConfig` as its
``adversary`` field and therefore flows through the grid engine,
checkpoints and caches like any other scenario parameter.

Sampling follows the fuzzer-loop idiom: the mix's fractions are
*weights*.  The total attacked fraction is their sum; the concrete
attacker set is drawn by the placement policy, and when the mix names
several attacks each attacker's behaviour is a per-seed weighted draw —
so a sweep over seeds explores different realizations of the same mix,
exactly like a fuzzer re-rolling its attack schedule per iteration.

Everything here is a pure function of ``(mix, seed, population,
capability topology)``: :func:`place_attackers` derives its own RNGs
from the scenario seed (the ``"freeriders"`` stream name keeps the
single-attack ``random``-policy case bit-identical to the legacy
``freerider_*`` selection), consumes them in a fixed order and touches
no global state.  Every shard of a sharded run recomputes the identical
placement; the hypothesis suite pins the purity directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.placement import PLACEMENT_POLICIES, place_ids
from repro.adversary.registry import get_attack, is_registered
from repro.sim.rng import derive_seed

#: node_id -> (attack name, attack parameter): one scenario's placement.
Placement = Dict[int, Tuple[str, float]]


@dataclass(frozen=True, slots=True)
class AttackMix:
    """A weighted set of attacks plus their placement policy.

    ``attacks`` holds ``(name, fraction)`` pairs; each fraction is the
    expected share of receivers running that attack, and their sum is
    the total attacked fraction.  ``params`` optionally overrides an
    attack's parameter (see the catalog's ``param_doc``); unnamed
    attacks use their registered default.  ``victim_policy`` picks where
    the attackers sit (see :mod:`repro.adversary.placement`).
    """

    attacks: Tuple[Tuple[str, float], ...]
    params: Tuple[Tuple[str, float], ...] = ()
    victim_policy: str = "random"
    #: Extra label mixed into the placement/assignment seeds.  Lets two
    #: otherwise-identical mixes decorrelate their draws; the default
    #: keeps the legacy freerider selection bit-compatible.
    salt: str = field(default="", compare=True)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, name: str, fraction: float,
               param: Optional[float] = None,
               victim_policy: str = "random") -> "AttackMix":
        """A one-attack mix (the shape the ``freerider_*`` shim builds)."""
        params = () if param is None else ((name, param),)
        return cls(attacks=((name, fraction),), params=params,
                   victim_policy=victim_policy)

    @classmethod
    def parse(cls, attacks_text: str, params_text: str = "",
              victim_policy: str = "random") -> "AttackMix":
        """Build a mix from CLI syntax: ``"spam=0.1,withhold=0.05"``.

        ``params_text`` uses the same ``name=value`` syntax for parameter
        overrides.  Raises :class:`ValueError` on malformed input; name
        and range validation is left to :meth:`violations` so the CLI
        can report every problem at once.
        """
        return cls(attacks=_parse_pairs(attacks_text, "--attacks"),
                   params=_parse_pairs(params_text, "--attack-params"),
                   victim_policy=victim_policy)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def total_fraction(self) -> float:
        """The expected fraction of receivers attacked (sum of weights)."""
        return sum(fraction for _, fraction in self.attacks)

    def attack_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.attacks)

    def param_for(self, name: str) -> float:
        """The parameter ``name`` runs with: override or catalog default."""
        for param_name, value in self.params:
            if param_name == name:
                return value
        return get_attack(name).default_param

    def describe(self) -> str:
        parts = ", ".join(f"{name}={fraction:g}"
                          for name, fraction in self.attacks)
        return f"{parts} @ {self.victim_policy}"

    # ------------------------------------------------------------------
    # identity and validation
    # ------------------------------------------------------------------
    def key(self) -> tuple:
        """Stable value identity (feeds ``scenario_key``)."""
        return ("attack-mix", self.attacks, self.params, self.victim_policy,
                self.salt)

    def violations(self) -> List[str]:
        """Every way this mix is invalid, as human-readable strings.

        Importing the in-tree attacks here (not at module import) keeps
        the mix type usable by ``ScenarioConfig`` without dragging the
        protocol stack in, while still validating names against the full
        catalog.
        """
        import repro.adversary.attacks  # noqa: F401  (registers the catalog)

        errors = []
        if not self.attacks:
            errors.append("attack mix names no attacks")
        seen = set()
        for name, fraction in self.attacks:
            if name in seen:
                errors.append(f"attack {name!r} listed twice in the mix")
            seen.add(name)
            if not is_registered(name):
                from repro.adversary.registry import attack_names
                errors.append(f"unknown attack {name!r}; known: "
                              f"{', '.join(attack_names())}")
            if not 0.0 < fraction < 1.0:
                errors.append(f"attack fraction for {name!r} must be in "
                              f"(0, 1), got {fraction!r}")
        if not 0.0 < self.total_fraction < 1.0:
            errors.append(f"total attacked fraction must be in (0, 1), "
                          f"got {self.total_fraction!r}")
        for name, value in self.params:
            if name not in seen:
                errors.append(f"parameter override for {name!r}, which the "
                              f"mix does not include")
            if not 0.0 < value <= 1.0:
                errors.append(f"attack parameter for {name!r} must be in "
                              f"(0, 1], got {value!r}")
        if self.victim_policy not in PLACEMENT_POLICIES:
            errors.append(f"unknown victim policy {self.victim_policy!r}; "
                          f"known: {', '.join(PLACEMENT_POLICIES)}")
        return errors

    def required_membership(self) -> Optional[str]:
        """The membership substrate the mix needs, if any attack does."""
        for name, _ in self.attacks:
            if is_registered(name):
                required = get_attack(name).requires_membership
                if required is not None:
                    return required
        return None


def _parse_pairs(text: str, flag: str) -> Tuple[Tuple[str, float], ...]:
    pairs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, value = chunk.partition("=")
        if not sep or not name.strip():
            raise ValueError(f"{flag}: expected name=value, got {chunk!r}")
        try:
            pairs.append((name.strip(), float(value)))
        except ValueError:
            raise ValueError(f"{flag}: {name.strip()!r} needs a numeric "
                             f"value, got {value!r}") from None
    return tuple(pairs)


# ----------------------------------------------------------------------
# sampling: (mix, seed, population, topology) -> placement
# ----------------------------------------------------------------------
def place_attackers(mix: AttackMix, *, seed: int, n_nodes: int,
                    capacities: Sequence[float]) -> Placement:
    """The attacker set and per-attacker behaviour for one scenario run.

    A pure function: all randomness comes from RNGs derived here from
    ``seed`` (placement draws from the ``"freeriders"``-named stream —
    the legacy stream name — so a single-attack ``random``-policy mix
    reproduces the historical freerider selection bit for bit; the
    per-attacker weighted assignment draws from its own
    ``"attack-mix"`` stream and is skipped entirely for single-attack
    mixes).  Sharded execution relies on this: every shard recomputes
    the identical placement instead of shipping it.
    """
    receivers = range(1, n_nodes)
    count = round(mix.total_fraction * len(receivers))
    if count <= 0:
        return {}
    rng = random.Random(derive_seed(seed, "freeriders" + mix.salt))
    ids = place_ids(mix.victim_policy, rng, receivers, capacities, count)
    if len(mix.attacks) == 1:
        name = mix.attacks[0][0]
        param = mix.param_for(name)
        return {node_id: (name, param) for node_id in ids}
    assign_rng = random.Random(derive_seed(seed, "attack-mix" + mix.salt))
    names = [name for name, _ in mix.attacks]
    weights = [fraction for _, fraction in mix.attacks]
    placement: Placement = {}
    for node_id in ids:  # sorted, so assignment order is deterministic
        name = assign_rng.choices(names, weights)[0]
        placement[node_id] = (name, mix.param_for(name))
    return placement


def effective_adversary(config) -> Optional[AttackMix]:
    """The adversary a scenario actually runs, shim included.

    ``config.adversary`` wins when set; otherwise the deprecated
    ``freerider_fraction/mode/param`` triple is transparently lifted to
    the equivalent single-attack mix (random placement — the historical
    behaviour, bit for bit).  Returns None for an honest scenario.
    """
    adversary = getattr(config, "adversary", None)
    if adversary is not None:
        return adversary
    fraction = getattr(config, "freerider_fraction", 0.0)
    if fraction <= 0:
        return None
    return AttackMix.single(config.freerider_mode, fraction,
                            config.freerider_param)
