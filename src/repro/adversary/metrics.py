"""Per-victim impact metrics for adversarial scenarios.

The question an attack sweep answers is not "did the attackers
misbehave" (they did, by construction) but *what it cost*: how much
worse the honest population streams, how much worse the attacked seats
themselves stream, and what the attack cost the attackers — upload spent,
convictions earned.  :func:`attack_impact` reduces one finished run to
exactly that comparison, shaped to the in-worker summary contracts
(:mod:`repro.metrics.summary`): picklable module-level function,
JSON-able value, pure function of the run — so it rides the grid
engine's checkpoints and the sharded harvest unchanged.

Alongside the bundle-shaped reduction, the module exposes scalar grid
metrics (``metric_attack_*``) for ``sweep --attacks`` CSV columns.

Imports of the metric/conviction machinery are deferred into the
function bodies: this module is re-exported from :mod:`repro.adversary`,
which the experiment runner imports, and the :mod:`repro.metrics`
package imports the runner — importing any of it at module load would
close that cycle.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.analysis.stats import mean


def _subpopulation(result, ids: Sequence[int],
                   lags: Dict[int, float]) -> Dict[str, object]:
    """Delivery/lag/cost summary of one subpopulation of receivers."""
    if not ids:
        return {"n": 0, "delivery_pct": math.nan, "mean_lag": math.nan,
                "unreached": 0, "mean_served": math.nan}
    total = result.total_packets
    delivered = [result.nodes[node_id].delivered_count() for node_id in ids]
    own_lags = [lags[node_id] for node_id in ids]
    return {
        "n": len(ids),
        "delivery_pct": (100.0 * mean(delivered) / total
                         if total > 0 else math.nan),
        # mean() is finite-only; the unreached count carries the infs.
        "mean_lag": mean(own_lags),
        "unreached": sum(1 for lag in own_lags if math.isinf(lag)),
        "mean_served": mean(getattr(result.nodes[node_id], "packets_served", 0)
                            for node_id in ids),
    }


def attack_impact(result) -> Dict[str, object]:
    """Attacked-vs-honest deltas plus attacker cost, JSON-able.

    ``attackers`` splits the receivers; ``honest``/``attacked`` summarize
    each side; ``delta`` is honest minus attacked (positive delivery /
    negative lag deltas mean the attacked seats stream worse); and
    ``attacker_cost`` is what the adversary paid — packets served from
    its own uplink, attack-specific counters, and convictions by the
    honest audit quorum (``convicted``/``conviction_recall`` stay 0/NaN
    when the scenario ran no audit).
    """
    from repro.freeriders.analysis import convictions
    from repro.metrics.lag import per_node_lag_jitter_free

    attackers = dict(getattr(result, "attackers", None) or {})
    receivers = list(result.receiver_ids())
    attacked_ids = [n for n in receivers if n in attackers]
    honest_ids = [n for n in receivers if n not in attackers]
    lags = per_node_lag_jitter_free(result)
    honest = _subpopulation(result, honest_ids, lags)
    attacked = _subpopulation(result, attacked_ids, lags)

    by_attack: Dict[str, int] = {}
    for name, _param in attackers.values():
        by_attack[name] = by_attack.get(name, 0) + 1
    counters: Dict[str, int] = {}
    for stats in (getattr(result, "attacker_stats", None) or {}).values():
        for counter, value in stats.items():
            counters[counter] = counters.get(counter, 0) + value

    convicted = convictions(result) & set(attacked_ids) if result.detectors else set()
    return {
        "attackers": {
            "n": len(attacked_ids),
            "by_attack": dict(sorted(by_attack.items())),
        },
        "honest": honest,
        "attacked": attacked,
        "delta": {
            "delivery_pct": honest["delivery_pct"] - attacked["delivery_pct"],
            "mean_lag": attacked["mean_lag"] - honest["mean_lag"],
        },
        "attacker_cost": {
            "mean_served": attacked["mean_served"],
            "honest_mean_served": honest["mean_served"],
            "counters": dict(sorted(counters.items())),
            "convicted": len(convicted),
            "conviction_recall": (len(convicted) / len(attacked_ids)
                                  if attacked_ids else math.nan),
        },
    }


def spec_attack_impact():
    """The in-worker summary form of :func:`attack_impact` (a MetricSpec)."""
    from repro.metrics.summary import MetricSpec

    return MetricSpec("attack_impact", attack_impact)


# ----------------------------------------------------------------------
# scalar grid metrics: one CSV column each (``sweep --attacks``)
# ----------------------------------------------------------------------
def metric_honest_delivery_pct(result) -> float:
    """Mean delivery % of the honest (un-attacked) receivers."""
    return attack_impact(result)["honest"]["delivery_pct"]


def metric_attack_delivery_delta(result) -> float:
    """Honest minus attacked mean delivery % (positive = victims worse)."""
    return attack_impact(result)["delta"]["delivery_pct"]


def metric_attack_lag_delta(result) -> float:
    """Attacked minus honest mean jitter-free lag (positive = victims worse)."""
    return attack_impact(result)["delta"]["mean_lag"]


def metric_attacker_served_mean(result) -> float:
    """Mean packets served by an attacker (the adversary's upload bill)."""
    return attack_impact(result)["attacker_cost"]["mean_served"]


def metric_attackers_convicted(result) -> float:
    """Attackers convicted by the honest audit quorum (0 without --audit)."""
    return attack_impact(result)["attacker_cost"]["convicted"]


#: name -> scalar metric fn, the columns ``sweep --attacks`` adds.
ATTACK_GRID_METRICS = {
    "honest_delivery_pct": metric_honest_delivery_pct,
    "attack_delivery_delta": metric_attack_delivery_delta,
    "attack_lag_delta": metric_attack_lag_delta,
    "attacker_served_mean": metric_attacker_served_mean,
    "attackers_convicted": metric_attackers_convicted,
}
