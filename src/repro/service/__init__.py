"""Experiment service control plane.

A long-running, stdlib-only broker around the experiment engine, in the
grid-middleware mold: clients *submit* jobs over HTTP/JSON, a resident
:class:`JobManager` schedules them onto executor threads driving the
same ``run_grid`` pipeline the CLI uses, and results/artifacts are
served back — with live progress streamed as Server-Sent Events.  The
point of residency is warmth: all jobs share one process-wide summary
cache, one scenario-result cache and one managed checkpoint directory,
so overlapping grids from different clients are cache hits, and a
cancelled or crashed job resubmitted with the same spec resumes from
its checkpoint instead of starting over.

Layering (engine and serving kept separate, FReD-style):

* :mod:`~repro.service.jobs` — job specs, states and the executor
  threads (no HTTP anywhere);
* :mod:`~repro.service.api` — pure request -> response dispatch (no
  sockets, unit-testable);
* :mod:`~repro.service.http` — the ``ThreadingHTTPServer`` shell and
  the SSE stream writer;
* :mod:`~repro.service.client` — a thin ``urllib`` client, used by the
  ``repro submit/status/watch`` verbs and the tests.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import ExperimentService
from repro.service.jobs import (Job, JobManager, JobSpec, QueueFullError,
                                SpecQuarantined, JOB_KINDS, JOB_STATES)

__all__ = [
    "ExperimentService",
    "Job",
    "JobManager",
    "JobSpec",
    "JOB_KINDS",
    "JOB_STATES",
    "QueueFullError",
    "ServiceClient",
    "ServiceError",
    "SpecQuarantined",
]
