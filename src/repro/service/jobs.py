"""Async job manager: the engine half of the service control plane.

A :class:`JobManager` owns a bounded submission queue, N executor
threads, and the process-wide warm state every job shares — the
scenario-result cache (``cached_run``), the grid summary cache
(:mod:`repro.experiments.gridrun`) and a managed checkpoint directory.
Jobs move ``queued -> running -> done | failed | cancelled``.

Durability comes from the checkpoint layer, not from any service-side
database: every grid-backed job binds to a JSONL checkpoint keyed by
its spec's fingerprint under the manager's checkpoint directory.  While
the job runs, each finished cell is appended (flush+fsync); on success
the spent checkpoint is garbage-collected; on cancel/crash it stays —
so resubmitting the *same spec* resumes from the finished cells (the
fingerprinted checkpoint *is* the durable job record).

Cancellation is cooperative at cell granularity: the executor checks
the job's cancel flag in the grid's progress callback, so a cancel
lands at the next finished cell (everything already checkpointed
survives for the resume).
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import ProgressEvent, run_grid
from repro.experiments.scales import _SCALES, cached_run
from repro.experiments.specs import SweepSpec
from repro.metrics.export import write_grid_csv, write_result_csv

#: Everything a job can be asked to do.  ``run`` is a one-cell sweep;
#: the render kinds regenerate a registered figure/table/ablation.
JOB_KINDS = ("run", "sweep", "figure", "table", "ablation")

#: The job lifecycle, in order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can never leave.
TERMINAL_STATES = ("done", "failed", "cancelled")


class QueueFullError(RuntimeError):
    """The bounded submission queue is at capacity (HTTP 503)."""


class JobCancelled(Exception):
    """Raised inside the executor to unwind a cancelled grid run."""


class SpecQuarantined(RuntimeError):
    """A crash-looping spec is quarantined (HTTP 429 + Retry-After).

    Raised by :meth:`JobManager.submit` when the same fingerprint has
    failed ``quarantine_after`` times in a row and its backoff window
    has not yet elapsed."""

    def __init__(self, fingerprint: str, retry_after: float, failures: int):
        super().__init__(
            f"spec {fingerprint} is quarantined after {failures} "
            f"consecutive failure(s); retry in {retry_after:.0f}s")
        self.fingerprint = fingerprint
        self.retry_after = retry_after
        self.failures = failures


@dataclass(frozen=True)
class JobSpec:
    """What to run: a kind plus its JSON parameter mapping.

    The *normalized* parameters (defaults filled in, lists canonical)
    define the spec's :meth:`fingerprint`; execution knobs the manager
    owns (worker counts, checkpoint locations) are deliberately not part
    of a spec, so the same experiment always maps to the same
    checkpoint.
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def normalized(self) -> Dict[str, object]:
        """The canonical parameter mapping; raises ValueError on an
        invalid spec (unknown kind/parameters, bad scenario)."""
        if self.kind in ("run", "sweep"):
            spec = self.sweep_spec()
            spec.configs()  # full scenario validation, collected errors
            return spec.to_params()
        if self.kind in ("figure", "table", "ablation"):
            return self._render_normalized()
        raise ValueError(f"unknown job kind {self.kind!r}; "
                         f"known: {', '.join(JOB_KINDS)}")

    def sweep_spec(self) -> SweepSpec:
        """The grid description for ``run``/``sweep`` kinds."""
        if self.kind not in ("run", "sweep"):
            raise ValueError(f"{self.kind!r} jobs have no sweep spec")
        params = dict(self.params)
        if self.kind == "run":
            params.setdefault("num_seeds", 1)
        spec = SweepSpec.from_params(params)
        if self.kind == "run" and spec.cell_count() != 1:
            raise ValueError(f"a 'run' job is a single cell; this spec has "
                             f"{len(spec.protocols)} protocol(s) x "
                             f"{len(spec.seed_list())} seed(s) — submit it "
                             f"as kind 'sweep'")
        return spec

    def _render_normalized(self) -> Dict[str, object]:
        known = {"id", "scale", "shards", "latency_floor"}
        unknown = sorted(set(self.params) - known)
        if unknown:
            raise ValueError(f"unknown {self.kind} parameter(s): "
                             f"{', '.join(unknown)}; known: "
                             f"{', '.join(sorted(known))}")
        artifact = self.params.get("id")
        registry = _render_registry(self.kind)
        if artifact not in registry:
            raise ValueError(f"unknown {self.kind} id {artifact!r}; known: "
                             f"{', '.join(sorted(registry))}")
        scale = self.params.get("scale")
        if scale is not None and scale not in _SCALES:
            raise ValueError(f"unknown scale {scale!r}; known: "
                             f"{', '.join(sorted(_SCALES))}")
        return {
            "id": artifact,
            "scale": scale,
            "shards": int(self.params.get("shards", 0) or 0),
            "latency_floor": self.params.get("latency_floor"),
        }

    def fingerprint(self) -> str:
        """Stable workload identity: keys the managed checkpoint, so a
        resubmitted spec resumes where its predecessor stopped.

        ``faults`` is excluded (like :meth:`SweepSpec.fingerprint`):
        injection is an execution circumstance, so a faulted job and its
        clean twin share one checkpoint — and the quarantine ledger sees
        a crash-looping spec as one spec however its faults vary."""
        params = self.normalized()
        params.pop("faults", None)
        blob = json.dumps({"kind": "sweep" if self.kind == "run" else self.kind,
                           "params": params}, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_jsonable(self) -> Dict[str, object]:
        return {"kind": self.kind, "params": self.normalized()}


def _render_registry(kind: str) -> Dict[str, object]:
    """The CLI's artifact registry for a render kind (imported lazily:
    the CLI imports this package for its ``serve`` verb)."""
    from repro import cli

    return {"figure": cli.FIGURES, "table": cli.TABLES,
            "ablation": cli.ABLATIONS}[kind]


class Job:
    """One submitted workload and its observable state.

    All mutation happens under the owning manager's lock; HTTP threads
    only ever read (or wait on the manager's condition for new events).
    """

    def __init__(self, job_id: str, spec: JobSpec, fingerprint: str,
                 checkpoint: str, csv_path: str):
        self.id = job_id
        self.spec = spec
        self.fingerprint = fingerprint
        self.state = "queued"
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Managed JSONL checkpoint this job appends to / resumes from.
        self.checkpoint = checkpoint
        #: CSV artifact path, written on completion.
        self.csv_path = csv_path
        self.cancel_event = threading.Event()
        #: Monotonic timestamp of the last observable progress (event
        #: append); the watchdog fails running jobs that stop moving.
        self.last_activity = time.monotonic()
        #: The executor thread currently running this job (watchdog
        #: bookkeeping: a wedged job's thread is abandoned + replaced).
        self.executor_thread: Optional[threading.Thread] = None
        #: Monotonic structured event log: progress ticks + state changes
        #: (what the SSE endpoint replays and follows).
        self.events: List[Dict[str, object]] = []
        self.cells_done = 0
        self.cells_total: Optional[int] = None
        self.cells_executed = 0
        self.cells_restored = 0
        #: Latest cell throughput (events/s), for status displays.
        self.events_per_sec = 0.0
        #: Wire counters accumulated across the job's cells.
        self.wire: Dict[str, int] = {}
        #: Result summary JSON, set when the job completes.
        self.result: Optional[Dict[str, object]] = None

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "params": self.spec.params,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cells": {
                "done": self.cells_done,
                "total": self.cells_total,
                "executed": self.cells_executed,
                "restored": self.cells_restored,
            },
            "events_per_sec": self.events_per_sec,
            "wire": self.wire,
        }


class JobManager:
    """Bounded job queue + executor threads over the shared engine."""

    def __init__(self, checkpoint_dir: str = ".repro-service",
                 executors: int = 1, queue_size: int = 16,
                 grid_jobs: int = 1, cache_results: bool = True,
                 job_ttl: Optional[float] = None,
                 job_timeout: Optional[float] = None,
                 watchdog_interval: float = 0.25,
                 quarantine_after: int = 3,
                 quarantine_base: float = 30.0):
        self.checkpoint_dir = checkpoint_dir
        self.artifact_dir = os.path.join(checkpoint_dir, "artifacts")
        os.makedirs(self.artifact_dir, exist_ok=True)
        #: Evict terminal jobs (and their event buffers + CSV artifacts,
        #: never their checkpoints) this many seconds after they finish.
        self.job_ttl = job_ttl
        #: Fail-and-free a running job with no progress for this long.
        self.job_timeout = job_timeout
        self.quarantine_after = max(1, quarantine_after)
        self.quarantine_base = quarantine_base
        #: SSE client disconnects observed by the transport (health).
        self.sse_disconnects = 0
        #: Jobs the watchdog failed for lack of progress (health).
        self.watchdog_timeouts = 0
        #: job id -> human-readable reason (404 body for evicted ids).
        self._evicted: Dict[str, str] = {}
        #: fingerprint -> [consecutive failures, monotonic last failure].
        self._failure_ledger: Dict[str, List[float]] = {}
        #: Executor threads the watchdog wrote off as wedged; they exit
        #: at their next loop turn instead of taking new jobs.
        self._abandoned: set = set()
        #: Grid worker processes per job (1 = in-thread serial, which is
        #: what keeps the scenario-result cache warm).
        self.grid_jobs = max(1, grid_jobs)
        #: Serial sweep cells run through ``cached_run`` so overlapping
        #: grids from later jobs reuse full results.  Costs memory
        #: proportional to distinct scenarios; disable for huge grids.
        self.cache_results = cache_results
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=max(1, queue_size))
        self._lock = threading.RLock()
        #: Signalled on every job event append / state change.
        self.condition = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 1
        self._stopping = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-executor-{i}")
            for i in range(max(1, executors))
        ]
        for thread in self._threads:
            thread.start()
        self._watchdog_thread: Optional[threading.Thread] = None
        if job_ttl is not None or job_timeout is not None:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog, daemon=True,
                name="repro-job-watchdog",
                args=(max(0.05, watchdog_interval),))
            self._watchdog_thread.start()

    # ------------------------------------------------------------------
    # public API (called from HTTP threads)
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Dict[str, object]
               ) -> Tuple[Job, bool]:
        """Validate, register and enqueue a job.

        Returns ``(job, created)``.  A spec identical to one already
        queued or running is *coalesced* onto the existing job
        (``created=False``) — two clients asking for the same grid share
        one execution and both watch the same stream.  Raises
        ``ValueError`` for an invalid spec and :class:`QueueFullError`
        when the bounded queue is at capacity.
        """
        spec = JobSpec(kind=kind, params=dict(params or {}))
        fingerprint = spec.fingerprint()  # validates; may raise ValueError
        with self._lock:
            if self._stopping:
                raise QueueFullError("manager is shutting down")
            self._check_quarantine(fingerprint)
            for job_id in reversed(self._order):
                existing = self._jobs[job_id]
                if (existing.fingerprint == fingerprint
                        and existing.state in ("queued", "running")):
                    return existing, False
            job = Job(
                job_id=f"j{self._next_id:04d}",
                spec=spec,
                fingerprint=fingerprint,
                checkpoint=os.path.join(self.checkpoint_dir,
                                        f"job-{fingerprint}.jsonl"),
                csv_path=os.path.join(self.artifact_dir,
                                      f"j{self._next_id:04d}.csv"),
            )
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise QueueFullError(
                    f"submission queue is full "
                    f"({self._queue.maxsize} jobs)") from None
            self._next_id += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._append_event(job, {"type": "state", "state": "queued"})
        return job, True

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def cancel(self, job_id: str) -> Job:
        """Request cancellation.  Queued jobs cancel immediately; running
        jobs cancel at the next finished cell (their checkpoint stays on
        disk, so the same spec resumes later)."""
        with self._lock:
            job = self.get(job_id)
            if job.state == "queued":
                job.cancel_event.set()
                self._finish(job, "cancelled")
            elif job.state == "running":
                job.cancel_event.set()
            return job

    def eviction_reason(self, job_id: str) -> Optional[str]:
        """Why a (now unknown) job id answers 404, if it was evicted."""
        with self._lock:
            return self._evicted.get(job_id)

    def note_sse_disconnect(self) -> None:
        """Transport callback: an SSE client went away mid-stream."""
        with self._lock:
            self.sse_disconnects += 1

    def evicted_count(self) -> int:
        with self._lock:
            return len(self._evicted)

    def quarantined_count(self) -> int:
        """Fingerprints currently at or past the quarantine threshold."""
        with self._lock:
            return sum(1 for entry in self._failure_ledger.values()
                       if entry[0] >= self.quarantine_after)

    def events_since(self, job: Job, index: int,
                     timeout: float = 0.5) -> List[Dict[str, object]]:
        """Events after ``index``; blocks up to ``timeout`` if none yet
        (the SSE follow loop)."""
        with self.condition:
            if len(job.events) <= index:
                self.condition.wait(timeout)
            return list(job.events[index:])

    def shutdown(self, cancel_running: bool = True) -> None:
        with self._lock:
            self._stopping = True
            if cancel_running:
                for job in self._jobs.values():
                    if job.state in ("queued", "running"):
                        job.cancel_event.set()
        for _ in self._threads:
            try:
                self._queue.put_nowait(None)
            except queue.Full:  # executors will still see _stopping
                break
        with self._lock:
            abandoned = set(self._abandoned)
        for thread in self._threads:
            if thread in abandoned:
                continue  # wedged; daemon thread, dies with the process
            thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    # executor side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        me = threading.current_thread()
        while True:
            job = self._queue.get()
            with self._lock:
                if me in self._abandoned:
                    # The watchdog wrote this thread off as wedged and
                    # spawned a replacement; hand any claimed job back
                    # and bow out.
                    self._abandoned.discard(me)
                    if job is not None and job.state == "queued":
                        try:
                            self._queue.put_nowait(job)
                        except queue.Full:
                            job.error = "executor lost during hand-off"
                            self._finish(job, "failed")
                    return
            if job is None:
                return
            with self._lock:
                if job.state != "queued":  # cancelled while queued
                    continue
                if self._stopping:
                    self._finish(job, "cancelled")
                    continue
                job.state = "running"
                job.started_at = time.time()
                job.last_activity = time.monotonic()
                job.executor_thread = me
                self._append_event(job, {"type": "state", "state": "running"})
            try:
                result = self._execute(job)
            except JobCancelled:
                with self._lock:
                    if job.state not in TERMINAL_STATES:
                        self._finish(job, "cancelled")
            except Exception as exc:  # noqa: BLE001 - job isolation barrier
                with self._lock:
                    if job.state not in TERMINAL_STATES:
                        job.error = f"{type(exc).__name__}: {exc}"
                        self._finish(job, "failed")
            else:
                with self._lock:
                    # The watchdog may have already failed a wedged job;
                    # a late result must not resurrect it.
                    if job.state not in TERMINAL_STATES:
                        job.result = result
                        self._finish(job, "done")
            with self._lock:
                job.executor_thread = None
                if me in self._abandoned:
                    self._abandoned.discard(me)
                    return

    def _execute(self, job: Job) -> Dict[str, object]:
        if job.spec.kind in ("run", "sweep"):
            return self._execute_grid(job)
        return self._execute_render(job)

    def _progress_sink(self, job: Job):
        """The coordinator-local progress callback for ``job``'s grid.

        Doubles as the cancellation point: raising here unwinds
        ``run_grid`` after the in-flight cell was checkpointed."""
        def progress(event: ProgressEvent) -> None:
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)
            with self._lock:
                job.cells_done = event.done
                job.cells_total = event.total
                if event.restored:
                    job.cells_restored += 1
                else:
                    job.cells_executed += 1
                    job.events_per_sec = event.events_per_sec
                for name, value in event.record.wire.items():
                    job.wire[name] = job.wire.get(name, 0) + value
                self._append_event(job, {"type": "progress",
                                         **event.to_jsonable()})
        return progress

    def _execute_grid(self, job: Job) -> Dict[str, object]:
        spec = job.spec.sweep_spec()
        jobs = self.grid_jobs
        if spec.shards > 1:
            jobs = 1  # sharded cells own their worker processes
        grid = run_grid(
            spec.configs(), spec.seed_list(), spec.metrics(),
            jobs=jobs,
            progress=self._progress_sink(job),
            checkpoint=job.checkpoint, resume=True, checkpoint_gc=True,
            run_fn=cached_run if self.cache_results else None,
            faults=spec.fault_plan(),
        )
        write_grid_csv(job.csv_path, grid)
        return grid_result_jsonable(job.spec.kind, grid)

    def _execute_render(self, job: Job) -> Dict[str, object]:
        from repro.experiments import gridrun

        params = job.spec.normalized()
        registry = _render_registry(job.spec.kind)
        fn = registry[params["id"]]
        scale = _SCALES[params["scale"]] if params["scale"] else None
        with _RENDER_LOCK:
            # gridrun options are process-global; renders serialize so
            # two figure jobs can't interleave configure() calls.
            saved = vars(gridrun.current_options()).copy()
            gridrun.configure(
                jobs=self.grid_jobs,
                checkpoint=job.checkpoint, resume=True, checkpoint_gc=True,
                shards=params["shards"] or 0,
                latency_floor=params["latency_floor"],
                progress=self._progress_sink(job))
            try:
                rendered = fn(scale)
            finally:
                gridrun.configure(**saved)
        write_result_csv(job.csv_path, rendered)
        return {
            "kind": job.spec.kind,
            "id": params["id"],
            "scale": params["scale"],
            "render": rendered.render(),
            "headers": list(rendered.headers),
            "rows": [list(row) for row in rendered.rows],
        }

    # ------------------------------------------------------------------
    # supervision: watchdog, TTL eviction, spec quarantine
    # ------------------------------------------------------------------
    def _watchdog(self, interval: float) -> None:
        """Background sweep: fail wedged jobs, evict expired ones."""
        while True:
            time.sleep(interval)
            with self._lock:
                if self._stopping:
                    return
                if self.job_timeout is not None:
                    self._sweep_wedged()
                if self.job_ttl is not None:
                    self._sweep_expired()

    def _sweep_wedged(self) -> None:
        """Fail running jobs with no progress for ``job_timeout`` and
        free their executor slots (lock held)."""
        now = time.monotonic()
        for job in list(self._jobs.values()):
            if job.state != "running":
                continue
            if now - job.last_activity <= self.job_timeout:
                continue
            self.watchdog_timeouts += 1
            job.error = (f"watchdog: no progress for "
                         f"{self.job_timeout:g}s")
            job.cancel_event.set()
            self._finish(job, "failed")
            thread = job.executor_thread
            if thread is not None and thread.is_alive():
                # The thread is wedged inside the job; write it off and
                # staff a replacement so throughput recovers even if it
                # never comes back.
                self._abandoned.add(thread)
                replacement = threading.Thread(
                    target=self._worker, daemon=True,
                    name=f"{thread.name}-replacement")
                self._threads.append(replacement)
                replacement.start()

    def _sweep_expired(self) -> None:
        """Evict terminal jobs past their TTL (lock held).  Event
        buffers and CSV artifacts go; managed checkpoints stay — they
        are the durable record a resubmitted spec resumes from."""
        now = time.time()
        for job_id in list(self._order):
            job = self._jobs[job_id]
            if job.state not in TERMINAL_STATES or job.finished_at is None:
                continue
            if now - job.finished_at <= self.job_ttl:
                continue
            del self._jobs[job_id]
            self._order.remove(job_id)
            self._evicted[job_id] = (
                f"finished ({job.state}) more than "
                f"{self.job_ttl:g}s ago (--job-ttl)")
            try:
                os.remove(job.csv_path)
            except OSError:
                pass  # never written, or already gone

    def _check_quarantine(self, fingerprint: str) -> None:
        """Reject a crash-looping spec inside its backoff window (lock
        held).  Raises :class:`SpecQuarantined` with the remaining wait."""
        entry = self._failure_ledger.get(fingerprint)
        if entry is None or entry[0] < self.quarantine_after:
            return
        failures, last_failure = int(entry[0]), entry[1]
        backoff = self.quarantine_base * (
            2.0 ** (failures - self.quarantine_after))
        remaining = backoff - (time.monotonic() - last_failure)
        if remaining > 0:
            raise SpecQuarantined(fingerprint, remaining, failures)

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    def _append_event(self, job: Job, event: Dict[str, object]) -> None:
        event = dict(event)
        event["job"] = job.id
        event["seq"] = len(job.events)
        job.events.append(event)
        job.last_activity = time.monotonic()
        self.condition.notify_all()

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = time.time()
        if state == "failed":
            entry = self._failure_ledger.setdefault(job.fingerprint,
                                                    [0, 0.0])
            entry[0] += 1
            entry[1] = time.monotonic()
        elif state == "done":
            self._failure_ledger.pop(job.fingerprint, None)
        self._append_event(job, {"type": "state", "state": state,
                                 "error": job.error})


#: Figure/table/ablation renders mutate process-global gridrun options.
_RENDER_LOCK = threading.Lock()


def grid_result_jsonable(kind: str, grid) -> Dict[str, object]:
    """A GridResult as result JSON: the deterministic content (render
    text, per-record values) plus a clearly-separated ``timing`` block
    for the measured parts."""
    wire: Dict[str, int] = {}
    for record in grid.records:
        if record is None:  # cell quarantined by fault supervision
            continue
        for name, value in record.wire.items():
            wire[name] = wire.get(name, 0) + value
    return {
        "kind": kind,
        "render": grid.render(),
        "metric_names": list(grid.metric_names),
        "scenarios": [config.name for config in grid.configs],
        "seeds": list(grid.seeds),
        "records": [record.to_jsonable() if record is not None else None
                    for record in grid.records],
        "failures": [failure.to_jsonable() for failure in grid.failures],
        "cell_retries": grid.cell_retries,
        "wire": wire,
        "timing": {"wall_time": grid.wall_time, "jobs": grid.jobs},
    }
