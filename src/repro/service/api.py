"""HTTP/JSON API surface of the service, framework- and socket-free.

``handle_request`` maps ``(method, path, body)`` onto the
:class:`~repro.service.jobs.JobManager` and returns either a
:class:`ApiResponse` (status + bytes) or a :class:`SseStream` marker
telling the transport layer to stream the named job's event log as
Server-Sent Events.  Keeping this pure makes the whole API unit-testable
without binding a port, and keeps :mod:`repro.service.http` a dumb
shell.

Routes (all JSON unless noted)::

    POST /v1/jobs                  {"kind": ..., "params": {...}} -> job
    GET  /v1/jobs                  all jobs, submission order
    GET  /v1/jobs/{id}             one job's status
    POST /v1/jobs/{id}/cancel      request cancellation
    GET  /v1/jobs/{id}/events      live progress (SSE)
    GET  /v1/jobs/{id}/result      result summary JSON (409 until done)
    GET  /v1/jobs/{id}/artifacts   artifact index (names, sizes, types)
    GET  /v1/jobs/{id}/artifacts/csv   CSV artifact (text/csv)
    GET  /v1/catalog/attacks       the attack catalog (= CLI --format json)
    GET  /v1/health                liveness + job state counts + supervision

A quarantined spec (same fingerprint crash-looping) answers 429 with a
``Retry-After`` header; an id evicted by ``--job-ttl`` answers 404 with
the eviction reason in the error body.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.service.jobs import (Job, JobManager, QueueFullError,
                                SpecQuarantined)


class ApiError(Exception):
    """An error with an HTTP status (rendered as a JSON body)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class ApiResponse:
    """A complete response: status, body bytes and content type."""

    status: int
    body: bytes
    content_type: str = "application/json"
    #: Extra response headers, e.g. ``(("Retry-After", "30"),)``.
    headers: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class SseStream:
    """Marker: the transport should stream this job's events as SSE."""

    job: Job


def json_response(obj: object, status: int = 200,
                  headers: Tuple[Tuple[str, str], ...] = ()) -> ApiResponse:
    body = (json.dumps(obj, indent=2, sort_keys=False) + "\n").encode("utf-8")
    return ApiResponse(status=status, body=body, headers=headers)


def error_response(status: int, message: str) -> ApiResponse:
    return json_response({"error": message}, status=status)


def handle_request(manager: JobManager, method: str, path: str,
                   body: Optional[bytes] = None):
    """Dispatch one request; returns ApiResponse or SseStream.

    Raises nothing: every failure becomes an error response, so the
    transport layer never has to translate exceptions.
    """
    try:
        return _dispatch(manager, method, path, body)
    except ApiError as exc:
        return error_response(exc.status, exc.message)


def _dispatch(manager: JobManager, method: str, path: str,
              body: Optional[bytes]):
    parts = tuple(p for p in path.split("?", 1)[0].split("/") if p)
    if parts == ("v1", "health"):
        _require(method, "GET")
        return json_response({
            "status": "ok",
            "jobs": manager.counts(),
            "sse_disconnects": manager.sse_disconnects,
            "watchdog_timeouts": manager.watchdog_timeouts,
            "evicted": manager.evicted_count(),
            "quarantined": manager.quarantined_count(),
        })
    if parts == ("v1", "catalog", "attacks"):
        _require(method, "GET")
        from repro.adversary import catalog_jsonable

        return json_response(catalog_jsonable())
    if parts == ("v1", "jobs"):
        if method == "POST":
            return _submit(manager, body)
        _require(method, "GET")
        return json_response(
            {"jobs": [job.to_jsonable() for job in manager.jobs()]})
    if len(parts) >= 3 and parts[:2] == ("v1", "jobs"):
        job = _job(manager, parts[2])
        tail = parts[3:]
        if not tail:
            _require(method, "GET")
            return json_response({"job": job.to_jsonable()})
        if tail == ("cancel",):
            _require(method, "POST")
            return json_response({"job": manager.cancel(job.id).to_jsonable()})
        if tail == ("events",):
            _require(method, "GET")
            return SseStream(job)
        if tail == ("result",):
            _require(method, "GET")
            return _result(job)
        if tail == ("artifacts",):
            _require(method, "GET")
            return _artifact_index(job)
        if tail == ("artifacts", "csv"):
            _require(method, "GET")
            return _csv_artifact(job)
    raise ApiError(404, f"no such route: {method} {path}")


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise ApiError(405, f"method {method} not allowed here")


def _job(manager: JobManager, job_id: str) -> Job:
    try:
        return manager.get(job_id)
    except KeyError:
        reason = manager.eviction_reason(job_id)
        if reason is not None:
            raise ApiError(404, f"job {job_id!r} was evicted: "
                                f"{reason}") from None
        raise ApiError(404, f"unknown job {job_id!r}") from None


def _submit(manager: JobManager, body: Optional[bytes]) -> ApiResponse:
    if not body:
        raise ApiError(400, "missing request body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, f"request body is not JSON: {exc}") from None
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ApiError(400, 'request body must be {"kind": ..., "params": {...}}')
    params = payload.get("params") or {}
    if not isinstance(params, dict):
        raise ApiError(400, '"params" must be an object')
    try:
        job, created = manager.submit(str(payload["kind"]), params)
    except SpecQuarantined as exc:
        # Crash-looping spec: tell the client when to come back.
        retry_after = max(1, int(exc.retry_after + 0.999))
        return json_response(
            {"error": str(exc), "retry_after": retry_after},
            status=429, headers=(("Retry-After", str(retry_after)),))
    except QueueFullError as exc:
        raise ApiError(503, str(exc)) from None
    except (ValueError, KeyError) as exc:
        raise ApiError(400, str(exc)) from None
    return json_response({"job": job.to_jsonable(), "created": created},
                         status=201 if created else 200)


def _result(job: Job) -> ApiResponse:
    if job.state != "done":
        raise ApiError(409, f"job {job.id} is {job.state}, not done"
                            + (f": {job.error}" if job.error else ""))
    return json_response({"job": job.to_jsonable(), "result": job.result})


def _artifact_index(job: Job) -> ApiResponse:
    """What this job has produced so far: name, fetch path, size, type.
    Valid in any state — the list is simply empty until artifacts
    exist."""
    artifacts = []
    try:
        size = os.path.getsize(job.csv_path)
    except OSError:
        size = None
    if size is not None:
        artifacts.append({
            "name": "csv",
            "path": f"/v1/jobs/{job.id}/artifacts/csv",
            "bytes": size,
            "content_type": "text/csv",
        })
    return json_response({"job": job.id, "state": job.state,
                          "artifacts": artifacts})


def _csv_artifact(job: Job) -> ApiResponse:
    if job.state != "done":
        raise ApiError(409, f"job {job.id} is {job.state}, not done")
    try:
        with open(job.csv_path, "rb") as fh:
            data = fh.read()
    except OSError:
        raise ApiError(404, f"job {job.id} has no CSV artifact") from None
    return ApiResponse(status=200, body=data, content_type="text/csv")
