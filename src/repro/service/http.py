"""The socket shell: ``ThreadingHTTPServer`` + the SSE stream writer.

Everything interesting happens a layer down — request dispatch in
:mod:`repro.service.api`, job state in :mod:`repro.service.jobs`.  This
module only moves bytes: it reads a request, hands it to
``handle_request`` and writes back either the returned
:class:`~repro.service.api.ApiResponse` or, for the events route, a
``text/event-stream`` that replays the job's event log from the start
and then follows it live until a terminal state event.

The server speaks HTTP/1.0 with connection-close framing on purpose:
every response (including the unbounded SSE body) is delimited by the
connection, so no chunked encoding and no keep-alive bookkeeping.  Each
connection gets its own daemon thread, so a slow SSE consumer never
blocks submissions.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.service.api import ApiResponse, SseStream, handle_request
from repro.service.jobs import Job, JobManager, TERMINAL_STATES

#: Comment frame sent while a followed job is idle, so dead client
#: connections surface as write errors instead of leaking threads.
_KEEPALIVE = b": keepalive\n\n"


class ServiceHandler(BaseHTTPRequestHandler):
    """One request: parse, dispatch, write the response (or stream)."""

    protocol_version = "HTTP/1.0"
    server_version = "repro-service/1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body: Optional[bytes] = self.rfile.read(length) if length else None
        outcome = handle_request(self.server.manager, method, self.path, body)
        try:
            if isinstance(outcome, SseStream):
                self._stream_events(outcome.job)
            else:
                self._send(outcome)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-response.  For an SSE stream that is
            # the *normal* way a subscription ends (the consumer simply
            # closes), so count it for /v1/health and move on — never
            # let it surface as a thread-killing traceback.
            if isinstance(outcome, SseStream):
                self.server.manager.note_sse_disconnect()

    def _send(self, response: ApiResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _stream_events(self, job: Job) -> None:
        """Replay ``job``'s event log as SSE, then follow it live.

        Every frame is ``event: <type>`` + ``data: <json>``; the stream
        ends (connection close) after a state event that enters a
        terminal state, so a client can simply read to EOF.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        manager: JobManager = self.server.manager
        index = 0
        while True:
            events = manager.events_since(job, index, timeout=0.5)
            if not events:
                self.wfile.write(_KEEPALIVE)
                self.wfile.flush()
                continue
            index += len(events)
            finished = False
            for event in events:
                frame = (f"event: {event['type']}\n"
                         f"data: {json.dumps(event)}\n\n")
                self.wfile.write(frame.encode("utf-8"))
                if (event.get("type") == "state"
                        and event.get("state") in TERMINAL_STATES):
                    finished = True
            self.wfile.flush()
            if finished:
                return


class ExperimentService(ThreadingHTTPServer):
    """The control plane's HTTP front: one server around one manager.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`),
    which is how the tests run hermetically.  ``close()`` tears down the
    listener *and* the manager; managed checkpoints of unfinished jobs
    stay on disk by design, so a restarted service resumes resubmitted
    specs.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0, quiet: bool = True):
        self.manager = manager
        self.quiet = quiet
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), ServiceHandler)

    def handle_error(self, request, client_address) -> None:
        """Silence client-disconnect noise from the handler machinery.

        ``BaseHTTPRequestHandler.finish()`` flushes the socket *after*
        the handler returns, so a client that disconnected during an SSE
        stream can still raise ``BrokenPipeError`` outside the
        handler's own try/except — which ``socketserver`` would print
        as a full traceback per disconnect.  Those are expected (and
        already counted by the handler); drop them.  Everything else
        keeps the default report."""
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread and return it."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True,
                                        name="repro-service-http")
        self._thread.start()
        return self._thread

    def close(self, cancel_running: bool = True) -> None:
        if self._thread is not None and self._thread.is_alive():
            self.shutdown()
            self._thread.join(timeout=10.0)
        self.server_close()
        self.manager.shutdown(cancel_running=cancel_running)
