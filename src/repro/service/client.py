"""Thin ``urllib`` client for the service API.

Backs the ``repro submit`` / ``repro status`` / ``repro watch`` CLI
verbs and the end-to-end tests; scripted users can import it directly.
One method per route, JSON in/out, plus :meth:`ServiceClient.events` —
a generator that parses the SSE stream into the same event dicts the
manager appends — and a polling :meth:`ServiceClient.wait`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from repro.service.jobs import TERMINAL_STATES


class ServiceError(RuntimeError):
    """A non-2xx API response (or a client-side timeout)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """A client bound to one service base URL."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.base = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # one method per route
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Optional[Dict[str, object]] = None
               ) -> Dict[str, object]:
        """POST /v1/jobs; returns ``{"job": ..., "created": ...}``."""
        return self._json("POST", "/v1/jobs",
                          payload={"kind": kind, "params": params or {}})

    def jobs(self) -> List[Dict[str, object]]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    def result(self, job_id: str) -> Dict[str, object]:
        """Result summary JSON; raises ServiceError(409) until done."""
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def artifacts(self, job_id: str) -> Dict[str, object]:
        """GET /v1/jobs/{id}/artifacts — the artifact index (names,
        sizes, content types); empty until artifacts exist."""
        return self._json("GET", f"/v1/jobs/{job_id}/artifacts")

    def csv(self, job_id: str) -> str:
        """The job's CSV artifact, as text."""
        status, body = self._request("GET", f"/v1/jobs/{job_id}/artifacts/csv")
        if status >= 400:
            raise ServiceError(status, _error_message(body))
        return body.decode("utf-8")

    def catalog_attacks(self) -> Dict[str, object]:
        return self._json("GET", "/v1/catalog/attacks")

    def health(self) -> Dict[str, object]:
        return self._json("GET", "/v1/health")

    # ------------------------------------------------------------------
    # streaming / waiting
    # ------------------------------------------------------------------
    def events(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Follow the job's SSE stream; yields event dicts.

        Replays the full event log first (the server streams from
        ``seq`` 0), then live events; returns after the terminal state
        event.  Keepalive comment frames are filtered out.
        """
        request = urllib.request.Request(
            f"{self.base}/v1/jobs/{job_id}/events")
        # Reads block until the next frame; the server's 0.5 s keepalives
        # bound them, so any generous per-read timeout works.
        with urllib.request.urlopen(request,
                                    timeout=max(self.timeout, 5.0)) as resp:
            data_lines: List[str] = []
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:  # blank line = end of frame
                    if data_lines:
                        event = json.loads("\n".join(data_lines))
                        data_lines = []
                        yield event
                        if (event.get("type") == "state"
                                and event.get("state") in TERMINAL_STATES):
                            return
                    continue
                if line.startswith(":"):  # keepalive comment
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                # "event:" lines are redundant with the JSON "type".

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.2) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, f"timed out after {timeout:g}s waiting for "
                         f"{job_id} (state: {job['state']})")
            time.sleep(poll)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None):
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        headers = {"Content-Type": "application/json"} if data else {}
        request = urllib.request.Request(self.base + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, exc.read()
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach service at {self.base}: "
                   f"{exc.reason}") from None

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, object]] = None
              ) -> Dict[str, object]:
        status, body = self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(status, _error_message(body))
        return json.loads(body.decode("utf-8")) if body else {}


def _error_message(body: bytes) -> str:
    try:
        return json.loads(body.decode("utf-8"))["error"]
    except (ValueError, KeyError, UnicodeDecodeError):
        return body.decode("utf-8", "replace").strip() or "unknown error"
