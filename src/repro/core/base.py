"""The three-phase gossip dissemination node (Algorithm 1 skeleton).

``GossipNode`` implements the full push-request-push state machine with
infect-and-die proposal semantics; the fanout policy is pluggable, which
is the *only* difference between standard gossip
(:class:`~repro.core.standard.StandardGossipNode`) and HEAP
(:class:`~repro.core.heap.HeapGossipNode`) — exactly the paper's framing
of HEAP as "standard gossip plus fanout adaptation".

Message handling mirrors the pseudo-code:

* phase 1 — every ``gossip_period`` the node proposes the ids delivered
  since the previous round to ``getFanout()`` uniformly random peers,
  then forgets them (infect-and-die: each id is proposed exactly once);
* phase 2 — a [Propose] receiver requests the ids it has neither
  delivered nor already requested, and arms a retransmission timer;
* phase 3 — a [Request] receiver serves the payloads it holds; a [Serve]
  receiver delivers new packets, queueing their ids for its next round.

Delivery plumbing: the node keeps a **dispatch table** mapping interned
payload kind-ids to bound envelope handlers.  The network captures the
table at attach time and hands each delivered envelope straight to the
matching handler; co-hosted protocols (peer sampling, auditing, ...)
join the same endpoint through :meth:`register_handler` /
:meth:`register_handlers` instead of the old string-keyed
``extra_handlers`` dict.  Proposal rounds fan one [Propose] payload out
through :meth:`Network.send_many` — one wire-size computation and one
batched stats accumulation for the whole round.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Optional, Set, Union

from repro.core.config import GossipConfig
from repro.core.messages import Propose, Request, Serve
from repro.core.retransmission import RetransmissionManager
from repro.membership.selector import UniformSelector
from repro.membership.view import LocalView
from repro.net.message import Envelope, intern_kind, kind_name
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.streaming.packets import StreamPacket
from repro.streaming.receiver import ReceiverLog


class GossipNode:
    """One participant of the gossip dissemination."""

    __slots__ = ("_sim", "_net", "node_id", "view", "config", "_rng",
                 "capability_bps", "selector", "log", "_store", "_to_propose",
                 "_requested", "_gossip_timer", "_retransmission", "_policy",
                 "on_deliver", "on_request_sent", "on_serve_received",
                 "_dispatch", "proposes_sent", "requests_sent", "serves_sent",
                 "packets_served", "rounds", "partners_per_round")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float):
        config.validate()
        self._sim = sim
        self._net = net
        self.node_id = node_id
        self.view = view
        self.config = config
        self._rng = rng
        #: The node's advertised upload capability (HEAP's b_p); mutable so
        #: experiments can model capability changes over time.
        self.capability_bps = capability_bps
        #: Gossip-target selector; uniform by default (Algorithm 1 line 23),
        #: replaceable e.g. with a capability-biased selector at the source
        #: (the paper's Section 5 extension).
        self.selector = UniformSelector(rng)

        self.log = ReceiverLog(node_id)
        self._store: Dict[int, StreamPacket] = {}
        self._to_propose: List[int] = []
        self._requested: Set[int] = set()

        self._gossip_timer = PeriodicTimer(sim, config.gossip_period, self._on_gossip_tick)
        self._retransmission: Optional[RetransmissionManager] = None
        if config.retransmission:
            self._retransmission = RetransmissionManager(
                sim,
                period=config.retransmission_period,
                max_retries=config.retransmission_retries,
                is_delivered=self._store.__contains__,
                resend=self._send_request,
                release=self._requested.difference_update,
            )

        #: Observer called as on_deliver(packet, time) for every delivery.
        self.on_deliver: Optional[Callable[[StreamPacket, float], None]] = None
        #: Audit hooks (see repro.freeriders): number of ids requested
        #: from a peer, and number of packets a peer served us.
        self.on_request_sent: Optional[Callable[[int, int], None]] = None
        self.on_serve_received: Optional[Callable[[int, int], None]] = None
        #: Kind-id dispatch table: the network captures this (live) at
        #: attach time and routes every delivered envelope through it.
        self._dispatch: Dict[int, Callable[[Envelope], None]] = {
            Propose.kind_id: self._handle_propose,
            Request.kind_id: self._handle_request,
            Serve.kind_id: self._handle_serve,
        }

        # Counters (diagnostics and tests).
        self.proposes_sent = 0
        self.requests_sent = 0
        self.serves_sent = 0
        self.packets_served = 0
        self.rounds = 0
        self.partners_per_round: List[int] = []

    # ------------------------------------------------------------------
    # fanout policy hook — subclasses must provide partners_this_round()
    # ------------------------------------------------------------------
    def get_fanout(self) -> int:
        """Number of partners for the current round (Algorithm 1, line 27)."""
        raise NotImplementedError

    def current_fanout(self) -> float:
        """The fractional fanout value before per-round quantization."""
        raise NotImplementedError

    def set_fanout_policy(self, policy) -> None:
        """Replace the fanout policy (e.g. pin the source to a fixed one)."""
        self._policy = policy

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, phase: Optional[float] = None) -> None:
        """Begin gossiping.  ``phase`` overrides the randomized first tick."""
        if phase is None and self.config.randomize_phase:
            phase = self._rng.uniform(0, self.config.gossip_period)
        self._gossip_timer.start(phase)

    def stop(self) -> None:
        self._gossip_timer.stop()

    @property
    def running(self) -> bool:
        return self._gossip_timer.running

    # ------------------------------------------------------------------
    # application-facing API
    # ------------------------------------------------------------------
    def publish(self, packet: StreamPacket) -> None:
        """Source entry point (Algorithm 1, `publish`): deliver locally and
        gossip the fresh id immediately."""
        self._deliver(packet)
        self._to_propose.remove(packet.packet_id)
        self._gossip([packet.packet_id])

    def has_packet(self, packet_id: int) -> bool:
        return packet_id in self._store

    def delivered_count(self) -> int:
        return len(self.log)

    # ------------------------------------------------------------------
    # phase 1: propose
    # ------------------------------------------------------------------
    def _on_gossip_tick(self) -> None:
        self.rounds += 1
        if not self._to_propose:
            return
        ids = self._to_propose
        self._to_propose = []  # infect and die
        self._gossip(ids)

    def _gossip(self, ids: List[int]) -> None:
        fanout = self.get_fanout()
        self.partners_per_round.append(fanout)
        if fanout <= 0:
            return
        partners = self.selector.select(self.view, fanout)
        if not partners:
            return
        self._net.send_many(self.node_id, partners, Propose(ids))
        self.proposes_sent += len(partners)

    # ------------------------------------------------------------------
    # phase 2: request
    # ------------------------------------------------------------------
    def _on_propose(self, src: int, proposal: Propose) -> None:
        wanted = [packet_id for packet_id in proposal.ids
                  if packet_id not in self._requested]
        if not wanted:
            return
        self._requested.update(wanted)
        self._send_request(src, wanted)
        if self._retransmission is not None:
            self._retransmission.track(src, wanted)

    def _send_request(self, peer: int, ids: List[int]) -> None:
        self._net.send(self.node_id, peer, Request(ids))
        self.requests_sent += 1
        if self.on_request_sent is not None:
            self.on_request_sent(peer, len(ids))

    # ------------------------------------------------------------------
    # phase 3: serve
    # ------------------------------------------------------------------
    def _on_request(self, src: int, request: Request) -> None:
        packets = [self._store[packet_id] for packet_id in request.ids
                   if packet_id in self._store]
        if not packets:
            return
        self._net.send(self.node_id, src, Serve(packets))
        self.serves_sent += 1
        self.packets_served += len(packets)

    def _on_serve(self, src: int, serve: Serve) -> None:
        if self.on_serve_received is not None:
            self.on_serve_received(src, len(serve.packets))
        for packet in serve.packets:
            if packet.packet_id not in self._store:
                self._deliver(packet)

    def _deliver(self, packet: StreamPacket) -> None:
        self._store[packet.packet_id] = packet
        self.log.record(packet.packet_id, self._sim.now)
        self._to_propose.append(packet.packet_id)
        # A delivered id must never be requested again.
        self._requested.add(packet.packet_id)
        if self.on_deliver is not None:
            self.on_deliver(packet, self._sim.now)

    # ------------------------------------------------------------------
    # network plumbing
    # ------------------------------------------------------------------
    def _handle_propose(self, envelope: Envelope) -> None:
        self._on_propose(envelope.src, envelope.payload)

    def _handle_request(self, envelope: Envelope) -> None:
        self._on_request(envelope.src, envelope.payload)

    def _handle_serve(self, envelope: Envelope) -> None:
        self._on_serve(envelope.src, envelope.payload)

    def dispatch_table(self) -> Dict[int, Callable[[Envelope], None]]:
        """The live kind-id dispatch table (captured by ``Network.attach``)."""
        return self._dispatch

    def register_handler(self, kind: Union[str, int],
                         handler: Callable[[Envelope], None]) -> None:
        """Route a payload kind (name or kind-id) to a co-hosted protocol.

        Raises on a duplicate registration — two protocols claiming one
        kind on the same endpoint is always a wiring bug.  A string name
        is resolved against the global kind registry and raises
        :class:`KeyError` for a kind nobody registered (minting one
        here would skew kind-id tables across fork/spawn shard
        workers): prefer the payload class's ``kind_id`` for kinds a
        protocol module owns.
        """
        kind_id = intern_kind(kind) if isinstance(kind, str) else kind
        if kind_id in self._dispatch:
            raise ValueError(f"node {self.node_id}: handler for kind "
                             f"{kind_name(kind_id)!r} already registered")
        self._dispatch[kind_id] = handler

    def register_handlers(
            self, table: Mapping[int, Callable[[Envelope], None]]) -> None:
        """Merge another protocol's dispatch table into this endpoint's."""
        for kind_id, handler in table.items():
            self.register_handler(kind_id, handler)

    def on_message(self, envelope: Envelope) -> None:
        """Fallback delivery entry point (direct callers, detached use).

        Attached nodes are normally dispatched straight from the network's
        captured table; this applies the same table, silently ignoring
        unregistered kinds (matching the old extra-handler behaviour).
        """
        handler = self._dispatch.get(envelope.payload.kind_id)
        if handler is not None:
            handler(envelope)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def retransmission_stats(self) -> Optional[RetransmissionManager]:
        return self._retransmission

    def mean_partners_per_round(self) -> float:
        if not self.partners_per_round:
            return 0.0
        return sum(self.partners_per_round) / len(self.partners_per_round)
