"""The three dissemination message types of the push-request-push scheme.

Wire sizes drive uplink serialization delay: [Propose] and [Request] are
small (a handful of 8-byte ids), [Serve] carries full 1316-byte payloads.
That asymmetry — cheap control plane, expensive data plane — is what lets
HEAP steer load by steering *proposals*.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.net.message import register_kind
from repro.streaming.packets import StreamPacket

#: Fixed protocol header bytes inside a datagram payload.
HEADER_BYTES = 8
#: Bytes per event id.
ID_BYTES = 8
#: Per-packet framing bytes in a serve message (id + length).
SERVE_PACKET_OVERHEAD = 12


class Propose:
    """Phase 1: push event ids to gossip partners.

    The wire size is computed once at construction: one proposal is sent
    to every gossip partner, so recomputing it per ``send`` was waste.
    """

    kind = "propose"
    kind_id = register_kind("propose")
    __slots__ = ("ids", "_wire_size")

    def __init__(self, ids: Sequence[int]):
        self.ids = tuple(ids)
        self._wire_size = HEADER_BYTES + ID_BYTES * len(self.ids)

    def wire_size(self) -> int:
        return self._wire_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Propose({len(self.ids)} ids)"


class Request:
    """Phase 2: pull the event ids the receiver still misses."""

    kind = "request"
    kind_id = register_kind("request")
    __slots__ = ("ids", "_wire_size")

    def __init__(self, ids: Sequence[int]):
        self.ids = tuple(ids)
        self._wire_size = HEADER_BYTES + ID_BYTES * len(self.ids)

    def wire_size(self) -> int:
        return self._wire_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Request({len(self.ids)} ids)"


class Serve:
    """Phase 3: push the actual payloads for requested ids.

    ``packets`` must not be mutated after construction (the size is
    cached, and the message may still be in flight).
    """

    kind = "serve"
    kind_id = register_kind("serve")
    __slots__ = ("packets", "_wire_size")

    def __init__(self, packets: List[StreamPacket]):
        self.packets = packets
        self._wire_size = HEADER_BYTES + sum(
            p.size_bytes + SERVE_PACKET_OVERHEAD for p in packets)

    def wire_size(self) -> int:
        return self._wire_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"Serve({len(self.packets)} packets)"
