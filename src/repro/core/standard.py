"""Standard homogeneous gossip (Algorithm 1).

Every node uses the same constant fanout regardless of capability.  The
paper's evaluation adds retransmission and bandwidth throttling to this
baseline "to guarantee a fair comparison" — both live in the shared
:class:`~repro.core.base.GossipNode` machinery, so the comparison here is
equally fair: the only delta to HEAP is fanout adaptation.
"""

from __future__ import annotations

import random

from repro.core.base import GossipNode
from repro.core.config import GossipConfig
from repro.core.fanout import FixedFanout
from repro.membership.view import LocalView
from repro.net.network import Network
from repro.sim.engine import Simulator


class StandardGossipNode(GossipNode):
    """Homogeneous gossip: ``getFanout()`` returns the configured constant."""

    __slots__ = ()

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float):
        super().__init__(sim, net, node_id, view, config, rng, capability_bps)
        self._policy = FixedFanout(config.fanout, mode="round", rng=rng)

    def get_fanout(self) -> int:
        return self._policy.partners_this_round()

    def current_fanout(self) -> float:
        return self._policy.current()
