"""Request retransmission (Algorithm 2, middle column).

When a node requests ids from a proposer it arms a timer; if some ids are
still undelivered when it fires, the node re-requests them from the same
proposer (the paper's ``receive [Propose, eProposed]`` re-processing).
After the retry budget is exhausted the ids are released from
``eRequested`` so that a *different* proposer's next [Propose] can pick
them up — without this, a single lost [Serve] would permanently hole the
stream, which is why the paper pairs UDP with retransmission.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.sim.engine import Simulator


class RetransmissionManager:
    """Tracks outstanding requests for one node."""

    __slots__ = ("_sim", "period", "max_retries", "_is_delivered", "_resend",
                 "_release", "retransmissions", "abandoned", "_outstanding")

    def __init__(self, sim: Simulator, period: float, max_retries: int,
                 is_delivered: Callable[[int], bool],
                 resend: Callable[[int, List[int]], None],
                 release: Callable[[Iterable[int]], None]):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries!r}")
        self._sim = sim
        self.period = period
        self.max_retries = max_retries
        self._is_delivered = is_delivered
        self._resend = resend
        self._release = release
        self.retransmissions = 0
        self.abandoned = 0
        self._outstanding = 0

    # ------------------------------------------------------------------
    def track(self, peer: int, ids: Sequence[int]) -> None:
        """Arm a timer for a [Request] just sent to ``peer``."""
        if not ids:
            return
        self._outstanding += 1
        # Retransmission timers are never cancelled, so they ride the
        # simulator's handle-free fast path.  Copy the ids eagerly: the
        # caller may go on mutating its list.
        ids = list(ids)
        self._sim.post(
            self.period, lambda: self._expire(peer, ids, retries_left=self.max_retries))

    def outstanding(self) -> int:
        """Number of armed timers (diagnostic)."""
        return self._outstanding

    # ------------------------------------------------------------------
    def _expire(self, proposer: int, ids: List[int], retries_left: int) -> None:
        self._outstanding -= 1
        missing = [packet_id for packet_id in ids if not self._is_delivered(packet_id)]
        if not missing:
            return  # everything arrived; nothing to do
        if retries_left > 0:
            self.retransmissions += 1
            self._resend(proposer, missing)
            self._outstanding += 1
            self._sim.post(
                self.period,
                lambda: self._expire(proposer, missing, retries_left - 1))
        else:
            # Give up on this proposer: free the ids so future proposals
            # from other nodes can re-trigger a request.
            self.abandoned += 1
            self._release(missing)
