"""Join-time upload-capability discovery (slow start).

The paper's §2.2 offers two sources for a node's advertised capability:
a user-configured maximum, or "computed, when joining, by a simple
heuristic to discover the node's upload capability, e.g., starting with
a very low capability while trying to upload as much as possible in
order to reach its maximal capability" (citing Zhang et al.'s universal
IP multicast work).  This module implements that heuristic:

* the node *advertises* a low initial capability;
* every probe period it compares its recent uplink throughput to the
  advertised value: if it managed to fill a large fraction of what it
  advertised, the advertisement grows multiplicatively (there may be
  headroom); if actual usage sits far below, the advertisement decays
  toward observed reality;
* the advertisement never exceeds the physical ceiling (discovered by
  the transport: in our simulator the uplink's configured capacity).

The result feeds HEAP's fanout adaptation in place of a static value,
so a node that joins conservatively ramps its contribution up within a
few probe periods — and a node whose effective capacity degrades (the
paper's overloaded PlanetLab hosts) ramps back down.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.bandwidth import UplinkQueue
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class CapabilityProber:
    """Slow-start estimator of a node's usable upload capability."""

    __slots__ = ("_sim", "_uplink", "advertised_bps", "ceiling_bps",
                 "probe_period", "growth", "decay", "high_watermark",
                 "low_watermark", "_on_change", "_bytes_at_last_probe",
                 "probes", "_timer")

    def __init__(self, sim: Simulator, uplink: UplinkQueue,
                 initial_bps: float = 64_000.0,
                 ceiling_bps: Optional[float] = None,
                 probe_period: float = 1.0,
                 growth: float = 1.5,
                 decay: float = 0.8,
                 high_watermark: float = 0.8,
                 low_watermark: float = 0.3,
                 on_change: Optional[Callable[[float], None]] = None):
        if initial_bps <= 0:
            raise ValueError("initial capability must be positive")
        if not 0.0 < decay < 1.0 < growth:
            raise ValueError("need decay in (0,1) and growth > 1")
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 <= low < high <= 1")
        self._sim = sim
        self._uplink = uplink
        self.advertised_bps = initial_bps
        self.ceiling_bps = ceiling_bps
        self.probe_period = probe_period
        self.growth = growth
        self.decay = decay
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._on_change = on_change
        self._bytes_at_last_probe = uplink.bytes_sent
        self.probes = 0
        self._timer = PeriodicTimer(sim, probe_period, self._probe)

    def start(self, phase: Optional[float] = None) -> None:
        self._bytes_at_last_probe = self._uplink.bytes_sent
        self._timer.start(phase)

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def observed_rate_bps(self) -> float:
        """Upload rate over the last probe period."""
        sent = self._uplink.bytes_sent - self._bytes_at_last_probe
        return sent * 8.0 / self.probe_period

    def _probe(self) -> None:
        self.probes += 1
        observed = self.observed_rate_bps()
        self._bytes_at_last_probe = self._uplink.bytes_sent
        previous = self.advertised_bps
        utilization = observed / self.advertised_bps
        if utilization >= self.high_watermark:
            # We filled what we advertised: there may be headroom above.
            self.advertised_bps *= self.growth
        elif 0 < utilization < self.low_watermark:
            # Far under-used *while traffic flows*: decay toward what is
            # actually moving (a degraded uplink, or inflated claims).
            # A completely idle period is no evidence either way — the
            # node may simply not have been asked — so we hold steady.
            self.advertised_bps = max(observed,
                                      self.advertised_bps * self.decay)
        ceiling = self.ceiling_bps
        if ceiling is not None and self.advertised_bps > ceiling:
            self.advertised_bps = ceiling
        if self.advertised_bps != previous and self._on_change is not None:
            self._on_change(self.advertised_bps)
