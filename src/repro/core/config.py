"""Protocol configuration.

Defaults reproduce the paper's experimental setup (Section 3.1):
fanout 7, gossip period 200 ms, aggregation every 200 ms exchanging the
10 freshest capability samples, UDP with retransmission.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GossipConfig:
    """All knobs of the dissemination and aggregation protocols."""

    #: Average fanout f.  The paper sets 7 for ~270 nodes (ln 270 ~= 5.6 + c).
    fanout: float = 7.0
    #: Gossip (propose) period in seconds.
    gossip_period: float = 0.2
    #: Randomize each node's first tick within one period (desynchronized
    #: rounds, as on a real testbed).
    randomize_phase: bool = True

    # -- retransmission (Algorithm 2, applied to both protocols) --------
    #: Enable the request-retransmission timer.
    retransmission: bool = True
    #: Seconds to wait for a [Serve] before re-requesting.  Must sit well
    #: above typical congestion-induced queueing delay: re-requesting a
    #: merely *delayed* serve duplicates payload traffic and amplifies
    #: congestion (see the retransmission ablation bench).
    retransmission_period: float = 2.0
    #: Number of re-requests before giving up on a proposer (after which
    #: the ids become requestable from other proposers again).
    retransmission_retries: int = 2

    # -- HEAP fanout adaptation -----------------------------------------
    #: Lower bound on an adapted fanout ("the source has at least fanout 1").
    min_fanout: float = 1.0
    #: Optional upper bound (superpeer-risk ablation); 0 disables the cap.
    max_fanout: float = 0.0
    #: 'stochastic' preserves the configured average fanout exactly by
    #: randomizing between floor and ceil; 'round' uses plain rounding.
    fanout_rounding: str = "stochastic"

    # -- capability aggregation (Algorithm 2) ----------------------------
    #: Aggregation gossip period in seconds.
    aggregation_period: float = 0.2
    #: Number of freshest (node, capability) samples sent per message.
    aggregation_fresh_count: int = 10
    #: Samples older than this many seconds are dropped from the local
    #: table (keeps the estimate tracking capability changes and churn).
    aggregation_sample_ttl: float = 10.0
    #: Fanout of the aggregation gossip itself.  1 matches the paper's
    #: reported cost ("around 1 KB/s ... completely marginal"); the
    #: aggregation ablation bench explores larger values.
    aggregation_fanout: int = 1

    # -- wire format ------------------------------------------------------
    #: Fixed bytes of protocol header inside each datagram payload.
    header_bytes: int = 8
    #: Bytes per event id in propose/request messages.
    id_bytes: int = 8
    #: Bytes per (node, capability, timestamp) aggregation sample.
    sample_bytes: int = 12

    def validate(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.gossip_period <= 0:
            raise ValueError("gossip period must be positive")
        if self.retransmission_period <= 0:
            raise ValueError("retransmission period must be positive")
        if self.retransmission_retries < 0:
            raise ValueError("retries must be >= 0")
        if self.min_fanout < 0:
            raise ValueError("min_fanout must be >= 0")
        if self.max_fanout < 0:
            raise ValueError("max_fanout must be >= 0 (0 disables)")
        if self.max_fanout and self.max_fanout < self.min_fanout:
            raise ValueError("max_fanout below min_fanout")
        if self.fanout_rounding not in ("stochastic", "round"):
            raise ValueError(f"unknown rounding mode {self.fanout_rounding!r}")
        if self.aggregation_period <= 0:
            raise ValueError("aggregation period must be positive")
        if self.aggregation_fresh_count < 1:
            raise ValueError("aggregation_fresh_count must be >= 1")
        if self.aggregation_sample_ttl <= 0:
            raise ValueError("aggregation_sample_ttl must be positive")
        if self.aggregation_fanout < 1:
            raise ValueError("aggregation_fanout must be >= 1")
