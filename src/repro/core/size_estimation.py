"""Gossip-based system-size estimation.

The paper sets the base fanout to ``ln(n) + c`` assuming n is known:
"a similar protocol can be used to continuously approximate the size of
the system [13], but for simplicity we consider here that the initial
fanout is computed knowing the system size in advance".  This module
builds that protocol — push-pull averaging à la Jelasity/Montresor/
Babaoglu (TOCS 2005) — so HEAP can run without global knowledge:

one node (the source) starts with value 1, everybody else with 0; the
gossip exchange drives every node's value towards the average ``1/n``,
so ``n ≈ 1 / value``.  Restarting in epochs keeps the estimate tracking
churn: each epoch lasts a fixed number of rounds, after which nodes
adopt the converged estimate and start a new epoch.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.membership.view import LocalView
from repro.net.message import register_kind
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

#: Bytes of an averaging exchange payload (epoch id + value + flags).
_WIRE_BYTES = 24


class SizeEstimateMessage:
    """Push half of a push-pull averaging exchange."""

    kind = "size-push"
    kind_id = register_kind("size-push")
    __slots__ = ("epoch", "value")

    def __init__(self, epoch: int, value: float):
        self.epoch = epoch
        self.value = value

    def wire_size(self) -> int:
        return _WIRE_BYTES


class SizeEstimateReply:
    """Pull half: the responder's value, for symmetric averaging."""

    kind = "size-pull"
    kind_id = register_kind("size-pull")
    __slots__ = ("epoch", "value")

    def __init__(self, epoch: int, value: float):
        self.epoch = epoch
        self.value = value

    def wire_size(self) -> int:
        return _WIRE_BYTES


class SizeEstimator:
    """One node's push-pull averaging agent.

    ``is_leader`` marks the single node seeding the epoch with value 1
    (the stream source in our experiments).  ``rounds_per_epoch`` trades
    convergence (averaging contracts variance by ~half per round) against
    tracking lag after churn; 30 rounds at a 200 ms period re-estimates
    every 6 s.
    """

    __slots__ = ("_sim", "_net", "node_id", "_view", "_rng", "is_leader",
                 "rounds_per_epoch", "epoch", "_round_in_epoch", "_value",
                 "_settled_estimate", "exchanges", "_timer", "_dispatch")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, rng: random.Random, is_leader: bool = False,
                 period: float = 0.2, rounds_per_epoch: int = 30):
        if rounds_per_epoch < 1:
            raise ValueError("rounds_per_epoch must be >= 1")
        self._sim = sim
        self._net = net
        self.node_id = node_id
        self._view = view
        self._rng = rng
        self.is_leader = is_leader
        self.rounds_per_epoch = rounds_per_epoch
        self.epoch = 0
        self._round_in_epoch = 0
        self._value = 1.0 if is_leader else 0.0
        #: Estimate carried over from the previously completed epoch.
        self._settled_estimate: Optional[float] = None
        self.exchanges = 0
        self._timer = PeriodicTimer(sim, period, self._tick)
        self._dispatch = {
            SizeEstimateMessage.kind_id: self._handle_push,
            SizeEstimateReply.kind_id: self._handle_pull,
        }

    # ------------------------------------------------------------------
    def start(self, phase: Optional[float] = None) -> None:
        self._timer.start(phase if phase is not None
                          else self._rng.uniform(0, self._timer.period))

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def estimate(self) -> Optional[float]:
        """Current size estimate, or None before the first epoch settles.

        Mid-epoch, the previous epoch's settled estimate is reported —
        the in-flight value is still converging and can be wildly off.
        """
        return self._settled_estimate

    def fanout_for_estimate(self, c: float = 1.4, fallback: float = 7.0) -> float:
        """``ln(n̂) + c`` from the current estimate (the paper's rule)."""
        estimate = self.estimate()
        if estimate is None or estimate < 2:
            return fallback
        return math.log(estimate) + c

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._round_in_epoch += 1
        if self._round_in_epoch > self.rounds_per_epoch:
            self._settle_epoch()
        partner_list = self._view.sample(1, self._rng)
        if not partner_list:
            return
        self._net.send_many(self.node_id, partner_list,
                            SizeEstimateMessage(self.epoch, self._value))

    def _settle_epoch(self) -> None:
        if self._value > 0:
            self._settled_estimate = 1.0 / self._value
        self.epoch += 1
        self._round_in_epoch = 0
        self._value = 1.0 if self.is_leader else 0.0

    # ------------------------------------------------------------------
    def dispatch_table(self):
        """Kind-id dispatch (captured by ``Network.attach``)."""
        return self._dispatch

    def on_message(self, envelope) -> None:
        handler = self._dispatch.get(envelope.payload.kind_id)
        if handler is not None:
            handler(envelope)

    def _handle_push(self, envelope) -> None:
        self._on_push(envelope.src, envelope.payload)

    def _handle_pull(self, envelope) -> None:
        self._on_pull(envelope.payload)

    def _on_push(self, src: int, message: SizeEstimateMessage) -> None:
        if message.epoch != self.epoch:
            # An epoch-ahead peer pulls us forward; a lagging peer is ignored
            # (it will catch up from others).
            if message.epoch > self.epoch:
                self.epoch = message.epoch
                self._round_in_epoch = 0
                self._value = 1.0 if self.is_leader else 0.0
            else:
                return
        self._net.send(self.node_id, src,
                       SizeEstimateReply(self.epoch, self._value))
        self._average_with(message.value)

    def _on_pull(self, reply: SizeEstimateReply) -> None:
        if reply.epoch == self.epoch:
            self._average_with(reply.value)

    def _average_with(self, other_value: float) -> None:
        self._value = (self._value + other_value) / 2.0
        self.exchanges += 1
