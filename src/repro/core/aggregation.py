"""Gossip-based capability aggregation (Algorithm 2, right column).

Every ``aggregation_period`` a node sends the 10 freshest
(node, capability, timestamp) samples it knows — always including its own,
refreshed — to ``aggregation_fanout`` random peers.  Receivers merge by
keeping the freshest sample per node and estimate the system-wide average
upload capability as the mean over their (TTL-bounded) sample table.

The estimate feeds HEAP's fanout adaptation; its accuracy/latency
trade-off is explored by ``benchmarks/bench_ablation_aggregation.py``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.membership.view import LocalView
from repro.net.message import register_kind
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

#: Fixed header bytes inside an aggregation datagram payload.
_HEADER_BYTES = 8
#: Bytes per serialized sample (node id, capability, age).
_SAMPLE_BYTES = 12


def _sample_ts(item):
    """Sort key for ``freshest``: the sample timestamp."""
    return item[1][1]


class AggregationMessage:
    """[Aggregation, fresh] — a batch of capability samples."""

    kind = "aggregation"
    kind_id = register_kind("aggregation")
    __slots__ = ("samples", "_wire_size")

    def __init__(self, samples: List[Tuple[int, float, float]]):
        #: list of (node_id, capability_bps, sample_timestamp)
        self.samples = samples
        self._wire_size = _HEADER_BYTES + _SAMPLE_BYTES * len(samples)

    def wire_size(self) -> int:
        return self._wire_size

    def __repr__(self) -> str:  # pragma: no cover
        return f"AggregationMessage({len(self.samples)} samples)"


class CapabilityAggregator:
    """One node's capability-aggregation agent."""

    __slots__ = ("_sim", "_net", "node_id", "_capability", "_view", "_rng",
                 "fresh_count", "fanout", "sample_ttl", "_samples",
                 "_oldest_ts", "messages_sent", "messages_received", "_timer")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 capability: Callable[[], float], view: LocalView,
                 rng: random.Random, period: float = 0.2,
                 fresh_count: int = 10, fanout: int = 7,
                 sample_ttl: float = 10.0):
        self._sim = sim
        self._net = net
        self.node_id = node_id
        self._capability = capability
        self._view = view
        self._rng = rng
        self.fresh_count = fresh_count
        self.fanout = fanout
        self.sample_ttl = sample_ttl
        #: node_id -> (capability_bps, sample_timestamp)
        self._samples: Dict[int, Tuple[float, float]] = {}
        #: Lower bound on the oldest foreign sample timestamp; lets
        #: _evict_stale skip the table scan when nothing can be stale
        #: (the common case while every peer keeps gossiping).
        self._oldest_ts = float("inf")
        self.messages_sent = 0
        self.messages_received = 0
        self._timer = PeriodicTimer(sim, period, self._gossip)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, phase: Optional[float] = None) -> None:
        self._refresh_own_sample()
        self._timer.start(phase if phase is not None
                          else self._rng.uniform(0, self._timer.period))

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    # sample table
    # ------------------------------------------------------------------
    def _refresh_own_sample(self) -> None:
        self._samples[self.node_id] = (self._capability(), self._sim.now)

    def _evict_stale(self) -> None:
        if self.sample_ttl <= 0:
            return
        cutoff = self._sim.now - self.sample_ttl
        if self._oldest_ts >= cutoff:
            return  # even the oldest known sample is still fresh
        stale = [node for node, (_, ts) in self._samples.items()
                 if ts < cutoff and node != self.node_id]
        for node in stale:
            del self._samples[node]
        own = self.node_id
        self._oldest_ts = min(
            (ts for node, (_, ts) in self._samples.items() if node != own),
            default=float("inf"))

    def freshest(self, count: int) -> List[Tuple[int, float, float]]:
        """The ``count`` freshest samples as (node, capability, timestamp).

        ``reverse=True`` with a positive key keeps the exact tie order of
        the historical ``key=-timestamp`` ascending sort (both are stable
        on insertion order), so traces are unchanged.
        """
        ordered = sorted(self._samples.items(), key=_sample_ts, reverse=True)
        return [(node, cap, ts) for node, (cap, ts) in ordered[:count]]

    def sample_count(self) -> int:
        return len(self._samples)

    # ------------------------------------------------------------------
    # the estimate
    # ------------------------------------------------------------------
    def average_estimate(self) -> float:
        """Mean capability over the current sample table (always >= own)."""
        if not self._samples:
            return self._capability()
        return sum(cap for cap, _ in self._samples.values()) / len(self._samples)

    def relative_capability(self) -> float:
        """This node's capability over the estimated average: HEAP's b_p/b."""
        average = self.average_estimate()
        if average <= 0:
            return 1.0
        return self._capability() / average

    # ------------------------------------------------------------------
    # gossip exchange
    # ------------------------------------------------------------------
    def _gossip(self) -> None:
        self._refresh_own_sample()
        self._evict_stale()
        partners = self._view.sample(self.fanout, self._rng)
        if not partners:
            return
        fresh = self.freshest(self.fresh_count)
        self._net.send_many(self.node_id, partners, AggregationMessage(fresh))
        self.messages_sent += len(partners)

    def on_message(self, src: int, message: AggregationMessage) -> None:
        self.messages_received += 1
        samples = self._samples
        own = self.node_id
        oldest = self._oldest_ts
        for node, capability, timestamp in message.samples:
            if node == own:
                continue  # nobody knows our capability better than we do
            existing = samples.get(node)
            if existing is None or timestamp > existing[1]:
                samples[node] = (capability, timestamp)
                if timestamp < oldest:
                    oldest = timestamp
        self._oldest_ts = oldest
        self._evict_stale()
