"""HEAP: HEterogeneity-Aware gossip Protocol (Algorithm 2).

Differences from standard gossip, exactly as in the paper:

* a :class:`~repro.core.aggregation.CapabilityAggregator` continuously
  estimates the system-average upload capability b;
* ``getFanout()`` returns ``f * b_p / b`` (Equation 1), bounded below by
  ``min_fanout`` and optionally capped, quantized per round;
* retransmission timers (shared machinery, also enabled in the baseline).

Everything else — three phases, infect-and-die, uniform peer selection —
is inherited unchanged from :class:`~repro.core.base.GossipNode`, which
is the point: HEAP "preserves the simplicity and proactive nature of
traditional gossip".
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.aggregation import AggregationMessage, CapabilityAggregator
from repro.core.base import GossipNode
from repro.core.config import GossipConfig
from repro.core.fanout import AdaptiveFanout
from repro.membership.view import LocalView
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.engine import Simulator


class HeapGossipNode(GossipNode):
    """A HEAP participant: gossip node + aggregation + adaptive fanout."""

    __slots__ = ("aggregator",)

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float):
        super().__init__(sim, net, node_id, view, config, rng, capability_bps)
        self.aggregator = CapabilityAggregator(
            sim, net, node_id,
            capability=lambda: self.capability_bps,
            view=view,
            rng=rng,
            period=config.aggregation_period,
            fresh_count=config.aggregation_fresh_count,
            fanout=config.aggregation_fanout,
            sample_ttl=config.aggregation_sample_ttl,
        )
        self._policy = AdaptiveFanout(
            base_fanout=config.fanout,
            capability=lambda: self.capability_bps,
            average_estimate=self.aggregator.average_estimate,
            min_fanout=config.min_fanout,
            max_fanout=config.max_fanout,
            mode=config.fanout_rounding,
            rng=rng,
        )
        # The aggregation protocol rides this endpoint's dispatch table.
        self.register_handler(AggregationMessage.kind_id,
                              self._handle_aggregation)

    # ------------------------------------------------------------------
    def start(self, phase: Optional[float] = None) -> None:
        super().start(phase)
        self.aggregator.start()

    def stop(self) -> None:
        super().stop()
        self.aggregator.stop()

    # ------------------------------------------------------------------
    def get_fanout(self) -> int:
        return self._policy.partners_this_round()

    def current_fanout(self) -> float:
        return self._policy.current()

    def average_capability_estimate(self) -> float:
        """The aggregation protocol's current estimate of b (diagnostics)."""
        return self.aggregator.average_estimate()

    # ------------------------------------------------------------------
    def _handle_aggregation(self, envelope: Envelope) -> None:
        self.aggregator.on_message(envelope.src, envelope.payload)
