"""The paper's contribution: three-phase gossip dissemination, homogeneous
(Algorithm 1) and heterogeneity-aware (HEAP, Algorithm 2).

Public surface:

* :class:`~repro.core.config.GossipConfig` — every protocol knob with the
  paper's defaults (fanout 7, 200 ms period, 10 freshest samples, ...);
* :class:`~repro.core.standard.StandardGossipNode` — the homogeneous
  baseline of Algorithm 1 (with retransmission and throttling, as the
  paper adds to it for a fair comparison);
* :class:`~repro.core.heap.HeapGossipNode` — HEAP: capability aggregation
  plus proportional fanout adaptation;
* :class:`~repro.core.aggregation.CapabilityAggregator` — the gossip
  aggregation protocol estimating the average upload capability;
* :class:`~repro.core.fanout.FixedFanout` / :class:`~repro.core.fanout.AdaptiveFanout`
  — fanout policies, separately testable.
"""

from repro.core.aggregation import AggregationMessage, CapabilityAggregator
from repro.core.base import GossipNode
from repro.core.config import GossipConfig
from repro.core.discovery import CapabilityProber
from repro.core.fanout import AdaptiveFanout, FixedFanout, ln_fanout
from repro.core.heap import HeapGossipNode
from repro.core.messages import Propose, Request, Serve
from repro.core.retransmission import RetransmissionManager
from repro.core.size_estimation import SizeEstimator
from repro.core.standard import StandardGossipNode

__all__ = [
    "AdaptiveFanout",
    "AggregationMessage",
    "CapabilityAggregator",
    "CapabilityProber",
    "FixedFanout",
    "GossipConfig",
    "GossipNode",
    "HeapGossipNode",
    "Propose",
    "Request",
    "RetransmissionManager",
    "Serve",
    "SizeEstimator",
    "StandardGossipNode",
    "ln_fanout",
]
