"""Fanout policies.

The fanout is the paper's "obvious knob to adapt the contribution of a
node": every gossip round a node proposes to ``fanout`` partners.
:class:`FixedFanout` is standard gossip; :class:`AdaptiveFanout` is
HEAP's Equation (1): ``f_p = f * b_p / b_avg`` with the average estimated
by the aggregation protocol.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional


def ln_fanout(n: int, c: float = 1.4) -> float:
    """The theoretical reliability threshold fanout ``ln(n) + c``.

    For n=270 and the default headroom c this gives ~7, the paper's value.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    return math.log(n) + c


def quantize_fanout(value: float, mode: str, rng: Optional[random.Random]) -> int:
    """Turn a fractional fanout into a per-round integer.

    ``stochastic`` mode randomizes between floor and ceil with probability
    equal to the fractional part, so the *average* number of partners per
    round equals ``value`` exactly — important because HEAP's reliability
    argument is about the average fanout across nodes.
    """
    if value <= 0:
        return 0
    if mode == "round":
        return int(round(value))
    if mode == "stochastic":
        if rng is None:
            raise ValueError("stochastic rounding needs an rng")
        floor = math.floor(value)
        fraction = value - floor
        if fraction > 0 and rng.random() < fraction:
            return floor + 1
        return floor
    raise ValueError(f"unknown rounding mode {mode!r}")


class FixedFanout:
    """Standard gossip: the same fanout every round at every node."""

    __slots__ = ("fanout", "mode", "_rng")

    def __init__(self, fanout: float, mode: str = "round",
                 rng: Optional[random.Random] = None):
        if fanout < 0:
            raise ValueError(f"fanout must be >= 0, got {fanout!r}")
        self.fanout = fanout
        self.mode = mode
        self._rng = rng

    def current(self) -> float:
        return self.fanout

    def partners_this_round(self) -> int:
        return quantize_fanout(self.fanout, self.mode, self._rng)


class AdaptiveFanout:
    """HEAP's Equation (1): fanout proportional to relative capability.

    ``capability`` returns the node's own (current) upload capability;
    ``average_estimate`` returns the aggregation protocol's estimate of
    the system average.  Bounds implement the paper's reliability floor
    (fanout >= min_fanout so the dissemination stays connected through
    the source) and the optional superpeer cap ablation.
    """

    __slots__ = ("base_fanout", "_capability", "_average_estimate",
                 "min_fanout", "max_fanout", "mode", "_rng")

    def __init__(self, base_fanout: float,
                 capability: Callable[[], float],
                 average_estimate: Callable[[], float],
                 min_fanout: float = 1.0,
                 max_fanout: float = 0.0,
                 mode: str = "stochastic",
                 rng: Optional[random.Random] = None):
        if base_fanout < 1:
            raise ValueError(f"base fanout must be >= 1, got {base_fanout!r}")
        self.base_fanout = base_fanout
        self._capability = capability
        self._average_estimate = average_estimate
        self.min_fanout = min_fanout
        self.max_fanout = max_fanout
        self.mode = mode
        self._rng = rng

    def current(self) -> float:
        """The fractional adapted fanout ``f * b_p / b_avg`` (bounded)."""
        average = self._average_estimate()
        if average <= 0:
            value = self.base_fanout
        else:
            value = self.base_fanout * self._capability() / average
        if value < self.min_fanout:
            value = self.min_fanout
        if self.max_fanout and value > self.max_fanout:
            value = self.max_fanout
        return value

    def partners_this_round(self) -> int:
        return quantize_fanout(self.current(), self.mode, self._rng)
