"""FaultPlan: a deterministic description of which failures to inject.

A plan is parsed from a compact text form (CLI ``--faults``, SweepSpec
``faults=``) made of comma-separated clauses:

``crash-cell=K`` / ``crash-cell=KxN``
    Kill the pool worker running grid cell ``K`` with ``os._exit`` —
    on the first attempt only, or on the first ``N`` attempts.
``stall-cell=K:SECS``
    The first attempt of cell ``K`` sleeps ``SECS`` seconds before
    running (trips per-attempt timeouts / the service watchdog).
``shard-exit=S@W``
    Shard worker ``S`` exits hard just before sending window ``W``.
``shard-stall=S@W:SECS``
    Shard worker ``S`` sleeps ``SECS`` seconds before sending window
    ``W`` (trips the barrier deadline).
``drop-wire=S@W``
    Shard ``S`` replaces its window-``W`` wire buffer to one peer with
    a corrupt packed buffer (torn transport), which the receiver
    detects as a codec error.
``torn-checkpoint=N``
    After the ``N``-th fresh record is appended to the grid checkpoint,
    tear the file mid-line and abort (simulated writer kill).

Plans are frozen, picklable, and carry no randomness: a faulted run is
exactly reproducible.  Cell faults fire attempt-aware (``crash-cell``
stops firing once its budget is spent, so the supervised retry
succeeds); shard faults fire only on the first scenario attempt — the
restart strips the plan.
"""

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

__all__ = ["FaultPlan"]


def _int(text: str, clause: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"fault clause {clause!r}: {text!r} is not an integer") from None
    if value < 0:
        raise ValueError(f"fault clause {clause!r}: index must be >= 0")
    return value


def _seconds(text: str, clause: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"fault clause {clause!r}: {text!r} is not a duration") from None
    if value <= 0:
        raise ValueError(f"fault clause {clause!r}: duration must be positive")
    return value


def _shard_at_window(text: str, clause: str) -> Tuple[int, int]:
    shard_text, sep, window_text = text.partition("@")
    if not sep:
        raise ValueError(f"fault clause {clause!r}: expected SHARD@WINDOW")
    return _int(shard_text, clause), _int(window_text, clause)


@dataclass(frozen=True)
class FaultPlan:
    """A frozen set of deterministic injection points."""

    #: (cell index, number of attempts to kill) pairs.
    crash_cells: Tuple[Tuple[int, int], ...] = ()
    #: (cell index, stall seconds) pairs — first attempt only.
    stall_cells: Tuple[Tuple[int, float], ...] = ()
    #: (shard, window): exit hard before sending that window.
    shard_exit: Optional[Tuple[int, int]] = None
    #: (shard, window, seconds): sleep before sending that window.
    shard_stall: Optional[Tuple[int, int, float]] = None
    #: (shard, window): corrupt that window's outbound wire buffer.
    drop_wire: Optional[Tuple[int, int]] = None
    #: Tear the checkpoint after this many fresh records were appended.
    torn_checkpoint: Optional[int] = None
    #: Original text form (round-trips through SweepSpec params).
    text: str = field(default="", compare=False)

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["FaultPlan"]:
        """Parse the comma-separated clause syntax; None/blank → None."""

        if text is None or not text.strip():
            return None
        crash_cells = []
        stall_cells = []
        shard_exit = None
        shard_stall = None
        drop_wire = None
        torn_checkpoint = None
        for raw in text.split(","):
            clause = raw.strip()
            if not clause:
                continue
            name, sep, value = clause.partition("=")
            if not sep:
                raise ValueError(f"fault clause {clause!r}: expected NAME=VALUE")
            name = name.strip()
            value = value.strip()
            if name == "crash-cell":
                cell_text, sep, times_text = value.partition("x")
                times = _int(times_text, clause) if sep else 1
                if times < 1:
                    raise ValueError(f"fault clause {clause!r}: crash count must be >= 1")
                crash_cells.append((_int(cell_text, clause), times))
            elif name == "stall-cell":
                cell_text, sep, secs_text = value.partition(":")
                if not sep:
                    raise ValueError(f"fault clause {clause!r}: expected CELL:SECONDS")
                stall_cells.append((_int(cell_text, clause), _seconds(secs_text, clause)))
            elif name == "shard-exit":
                shard_exit = _shard_at_window(value, clause)
            elif name == "shard-stall":
                target, sep, secs_text = value.partition(":")
                if not sep:
                    raise ValueError(f"fault clause {clause!r}: expected SHARD@WINDOW:SECONDS")
                shard, window = _shard_at_window(target, clause)
                shard_stall = (shard, window, _seconds(secs_text, clause))
            elif name == "drop-wire":
                drop_wire = _shard_at_window(value, clause)
            elif name == "torn-checkpoint":
                torn_checkpoint = _int(value, clause)
            else:
                raise ValueError(
                    f"unknown fault clause {name!r} (expected one of: crash-cell, "
                    f"stall-cell, shard-exit, shard-stall, drop-wire, torn-checkpoint)"
                )
        return cls(
            crash_cells=tuple(crash_cells),
            stall_cells=tuple(stall_cells),
            shard_exit=shard_exit,
            shard_stall=shard_stall,
            drop_wire=drop_wire,
            torn_checkpoint=torn_checkpoint,
            text=text,
        )

    def violations(self) -> Tuple[str, ...]:
        errors = []
        for cell, times in self.crash_cells:
            if cell < 0 or times < 1:
                errors.append(f"crash-cell {cell}x{times}: bad cell or count")
        for cell, seconds in self.stall_cells:
            if cell < 0 or seconds <= 0:
                errors.append(f"stall-cell {cell}:{seconds}: bad cell or duration")
        if self.torn_checkpoint is not None and self.torn_checkpoint < 1:
            errors.append("torn-checkpoint must be >= 1")
        return tuple(errors)

    # ------------------------------------------------------------------
    # Queries used by the supervision layers.

    @property
    def has_pool_faults(self) -> bool:
        """Faults that require (or target) the grid worker pool."""

        return bool(self.crash_cells)

    @property
    def has_cell_faults(self) -> bool:
        return bool(self.crash_cells or self.stall_cells)

    @property
    def has_shard_faults(self) -> bool:
        return (
            self.shard_exit is not None
            or self.shard_stall is not None
            or self.drop_wire is not None
        )

    def cell_fault(self, index: int, attempt: int):
        """The fault (if any) for attempt ``attempt`` of cell ``index``.

        Returns ``("crash",)``, ``("stall", seconds)`` or ``None``.
        Crash faults fire while the attempt is below their kill budget;
        stalls fire on the first attempt only.
        """

        for cell, times in self.crash_cells:
            if cell == index and attempt < times:
                return ("crash",)
        if attempt == 0:
            for cell, seconds in self.stall_cells:
                if cell == index:
                    return ("stall", seconds)
        return None

    def without_shard_faults(self) -> Optional["FaultPlan"]:
        """A copy with shard faults cleared (None if nothing remains)."""

        if not (self.has_cell_faults or self.torn_checkpoint is not None):
            return None
        return FaultPlan(
            crash_cells=self.crash_cells,
            stall_cells=self.stall_cells,
            torn_checkpoint=self.torn_checkpoint,
            text=self.text,
        )

    def to_text(self) -> str:
        """The canonical text form (what was parsed, if available)."""

        if self.text:
            return self.text
        clauses = []
        for cell, times in self.crash_cells:
            clauses.append(f"crash-cell={cell}" if times == 1 else f"crash-cell={cell}x{times}")
        for cell, seconds in self.stall_cells:
            clauses.append(f"stall-cell={cell}:{seconds:g}")
        if self.shard_exit is not None:
            clauses.append(f"shard-exit={self.shard_exit[0]}@{self.shard_exit[1]}")
        if self.shard_stall is not None:
            shard, window, seconds = self.shard_stall
            clauses.append(f"shard-stall={shard}@{window}:{seconds:g}")
        if self.drop_wire is not None:
            clauses.append(f"drop-wire={self.drop_wire[0]}@{self.drop_wire[1]}")
        if self.torn_checkpoint is not None:
            clauses.append(f"torn-checkpoint={self.torn_checkpoint}")
        return ",".join(clauses)


# Keep dataclass reflection honest: `text` must stay the only
# non-compared field, or plan equality would depend on formatting.
assert [f.name for f in fields(FaultPlan) if not f.compare] == ["text"]
