"""Structured failure records raised or collected by supervision.

Three shapes, one per supervised layer:

* :class:`CellFailure` — a grid cell whose worker kept dying after the
  retry budget was spent.  It is *data*, not an exception: the sweep
  completes its remaining cells and the failure rides along in the
  :class:`~repro.experiments.parallel.GridResult` as a degraded-result
  record.
* :class:`ShardFailure` — a sharded scenario lost a worker (exit, wedged
  barrier, corrupt wire buffer).  It *is* an exception, because a
  sharded scenario is all-or-nothing: every shard owns part of the
  population, so a dead shard invalidates the whole run.  It subclasses
  ``RuntimeError`` so existing callers that guard the sharded driver
  keep working.
* :class:`TornCheckpointInjected` — the torn-checkpoint-write fault
  fired: the checkpoint file has been deliberately truncated mid-line
  (simulating a writer killed mid-``write``) and the run aborted so a
  resume can prove the repair path.
"""

from dataclasses import dataclass
from typing import Tuple

__all__ = ["CellFailure", "ShardFailure", "TornCheckpointInjected"]


@dataclass(frozen=True)
class CellFailure:
    """A quarantined poison cell: every attempt died, sweep continued."""

    index: int
    scenario_index: int
    scenario_name: str
    seed_index: int
    seed: int
    kind: str  # "crash" | "timeout"
    attempts: int
    message: str

    def render(self) -> str:
        return (
            f"[{self.index}] {self.scenario_name} seed={self.seed}: "
            f"{self.kind} after {self.attempts} attempt(s) — {self.message}"
        )

    def to_jsonable(self) -> dict:
        return {
            "index": self.index,
            "scenario_index": self.scenario_index,
            "scenario_name": self.scenario_name,
            "seed_index": self.seed_index,
            "seed": self.seed,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
        }


class ShardFailure(RuntimeError):
    """A shard worker died or missed a window barrier deadline.

    Carries enough structure for supervision to decide (and tests to
    assert) exactly what happened: which shard, which window it was
    being waited on for, the last barrier it actually reached, and why
    the coordinator gave up ("exited", "barrier timeout", "error",
    "corrupt wire").
    """

    def __init__(
        self,
        shard: int,
        window_index: int,
        last_barrier: int,
        reason: str,
        detail: str = "",
    ) -> None:
        self.shard = shard
        self.window_index = window_index
        self.last_barrier = last_barrier
        self.reason = reason
        self.detail = detail
        where = (
            f"at window {window_index}" if window_index >= 0 else "before the first window"
        )
        barrier = (
            f"last barrier reached: {last_barrier}" if last_barrier >= 0 else "no barrier reached"
        )
        message = f"shard {shard} {reason} {where} ({barrier})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)

    def to_jsonable(self) -> dict:
        return {
            "shard": self.shard,
            "window_index": self.window_index,
            "last_barrier": self.last_barrier,
            "reason": self.reason,
            "detail": self.detail,
        }


class TornCheckpointInjected(RuntimeError):
    """Raised after the torn-checkpoint-write fault tears the file."""

    def __init__(self, path: str, index: int) -> None:
        self.path = path
        self.index = index
        super().__init__(
            f"injected torn checkpoint write after record {index} in {path} "
            f"(simulated writer kill; resume to repair)"
        )


def render_failures(failures: Tuple[CellFailure, ...]) -> Tuple[str, ...]:
    """Render lines for a failure block (empty tuple when clean)."""

    if not failures:
        return ()
    lines = [f"failed cells ({len(failures)}):"]
    lines.extend("  " + failure.render() for failure in failures)
    return tuple(lines)
