"""Deterministic fault-injection plane and supervision primitives.

This package is the chaos-engineering seam for the reproduction: a
:class:`~repro.faults.plan.FaultPlan` describes *which* failures to
inject (worker crashes at a grid cell, shard-worker exits at a window
barrier, slow-worker stalls, torn checkpoint writes, corrupted shard
wire buffers), and the supervision layers in ``repro.experiments``,
``repro.net.shard`` and ``repro.service`` turn every one of those
failures into a bounded, observable, retried-or-degraded outcome.

Two invariants anchor the design:

* **Faults are deterministic.** A plan names exact injection points
  (cell index, shard@window); there is no probabilistic coin-flip, so
  a faulted run is exactly reproducible.
* **Recovered runs are byte-identical to clean runs.** Scenarios are
  pure functions of (config, seed), so a supervised retry of a crashed
  worker or a restarted sharded scenario must produce renders and CSVs
  byte-for-byte equal to an unfaulted run.  The chaos parity suite in
  ``tests/test_faults.py`` pins this.

Unlike ``repro.sim``/``repro.net``, this package legitimately deals in
wall-clock time (backoff, heartbeats, watchdog deadlines).  All of it
flows through :mod:`repro.faults.clock` so deterministic packages can
import the seam without tripping the D101 lint rule.
"""

from repro.faults.failures import CellFailure, ShardFailure, TornCheckpointInjected
from repro.faults.plan import FaultPlan
from repro.faults.policy import (
    ShardSupervision,
    SupervisionPolicy,
    default_shard_supervision,
    set_default_shard_supervision,
)
from repro.faults.pool import SupervisedPool, WorkerTaskError

__all__ = [
    "CellFailure",
    "FaultPlan",
    "ShardFailure",
    "ShardSupervision",
    "SupervisedPool",
    "SupervisionPolicy",
    "TornCheckpointInjected",
    "WorkerTaskError",
    "default_shard_supervision",
    "set_default_shard_supervision",
]
