"""Worker-side fault application.

These run *inside* pool/shard worker processes, at the exact injection
points the :class:`~repro.faults.plan.FaultPlan` names.  Crashes use
``os._exit`` — no atexit handlers, no multiprocessing cleanup — so the
parent sees exactly what a SIGKILL'd / OOM-killed worker looks like:
a dead process sentinel and an EOF on the pipe, with no farewell.
"""

import os

from repro.faults import clock

__all__ = ["CRASH_EXIT_CODE", "SHARD_EXIT_CODE", "apply_cell_fault"]

#: Exit code used by injected pool-worker crashes (diagnosable in the
#: CellFailure message, distinct from real signals/exit codes).
CRASH_EXIT_CODE = 23

#: Exit code used by injected shard-worker exits.
SHARD_EXIT_CODE = 63


def apply_cell_fault(fault) -> None:
    """Apply a cell fault tuple produced by ``FaultPlan.cell_fault``."""

    if fault is None:
        return
    if fault[0] == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif fault[0] == "stall":
        clock.sleep(fault[1])
