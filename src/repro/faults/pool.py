"""SupervisedPool: a crash-safe worker pool for the grid engine.

``multiprocessing.Pool`` silently loses a task when its worker dies —
``imap_unordered`` just never yields the result, and the sweep hangs or
aborts.  This pool replaces it with explicit per-worker pipes plus
process sentinels, so the coordinator can *attribute* a death to the
task it was running and recover:

* each worker runs a module-level loop (spawn-importable, S201-clean)
  over its own duplex pipe — one task in flight per worker;
* the coordinator waits on ``connection.wait`` over busy pipes *and*
  process sentinels: a sentinel firing without a result is a crash;
* a crashed/timed-out cell is retried on a fresh worker with capped
  exponential backoff, up to ``SupervisionPolicy.cell_retries``;
* a cell that keeps dying is yielded as a ``("failed", ...)`` outcome
  instead of aborting the run — the caller quarantines it;
* exceptions *raised* by the task (as opposed to the worker dying) are
  not retried: determinism means they would fail identically, so they
  re-raise with the worker traceback attached.

Fault injection hooks in via ``fault_for(key, attempt)``: the fault is
shipped to the worker and applied there (the coordinator never pickles
closures — only plan tuples).
"""

import time
import traceback
from collections import deque
from multiprocessing import connection as _mpconn
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.faults.inject import apply_cell_fault
from repro.faults.policy import SupervisionPolicy

__all__ = ["SupervisedPool", "WorkerTaskError"]


class WorkerTaskError(RuntimeError):
    """A task raised inside its worker (carries the worker traceback)."""


def _pool_worker(conn, runner) -> None:
    """Worker loop: recv task → apply injected fault → run → send.

    Module-level so both fork and spawn contexts can target it, and so
    the S201 rule sees a plain importable callable entering the pool.
    """

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] != "task":  # ("stop",)
            return
        _tag, payload, fault = message
        apply_cell_fault(fault)
        try:
            result = runner(payload)
        except BaseException:
            reply = ("err", traceback.format_exc())
        else:
            reply = ("ok", result)
        try:
            conn.send(reply)
        except (OSError, ValueError):
            return


class _Worker:
    """One pool slot: a process, its pipe, and the task it holds."""

    __slots__ = ("process", "conn", "key", "payload", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.key: Optional[int] = None
        self.payload = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.key is not None


class SupervisedPool:
    """Crash-supervised task fan-out over a fixed-size worker fleet."""

    def __init__(self, ctx, workers: int, runner: Callable, policy=None) -> None:
        self._ctx = ctx
        self._size = max(1, workers)
        self._runner = runner
        self.policy = policy if policy is not None else SupervisionPolicy()
        errors = self.policy.violations()
        if errors:
            raise ValueError("; ".join(errors))
        #: Retry attempts scheduled after crashes/timeouts (recovery
        #: evidence for parity tests and the CLI supervision summary).
        self.retries = 0
        self.crashes = 0
        self.timeouts = 0
        self._spawned = 0
        self._workers: List[_Worker] = []

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False

    def _spawn(self) -> _Worker:
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_pool_worker,
            args=(child, self._runner),
            name=f"repro-grid-worker-{self._spawned}",
        )
        process.daemon = True
        self._spawned += 1
        process.start()
        child.close()
        worker = _Worker(process, parent)
        self._workers.append(worker)
        return worker

    def _discard(self, worker: _Worker, kill: bool = False) -> None:
        self._workers.remove(worker)
        if kill and worker.process.is_alive():
            worker.process.terminate()
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=5)

    def close(self) -> None:
        """Stop idle workers, kill busy/wedged ones, reap everything."""

        for worker in list(self._workers):
            if worker.busy:
                if worker.process.is_alive():
                    worker.process.terminate()
            else:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
        for worker in list(self._workers):
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    # -- supervision core ----------------------------------------------

    def run(
        self,
        tasks: Iterable[Tuple[int, object]],
        fault_for: Optional[Callable] = None,
    ) -> Iterator[tuple]:
        """Yield one outcome per task, in completion order.

        ``tasks`` is an iterable of ``(key, payload)``.  Outcomes are
        ``("ok", key, result)`` or ``("failed", key, kind, attempts,
        message)``.  ``fault_for(key, attempt)`` (optional) names the
        injected fault for that attempt; it runs on the coordinator and
        only plan tuples cross to the worker.
        """

        queue = deque(tasks)
        outstanding = len(queue)
        deferred: List[Tuple[float, int, object]] = []  # (ready_at, key, payload)
        attempts: Dict[int, int] = {}
        policy = self.policy
        while len(self._workers) < min(self._size, outstanding):
            self._spawn()

        while outstanding:
            now = time.monotonic()
            if deferred:
                ready = [entry for entry in deferred if entry[0] <= now]
                if ready:
                    deferred = [entry for entry in deferred if entry[0] > now]
                    queue.extend((key, payload) for _at, key, payload in ready)

            idle = [worker for worker in self._workers if not worker.busy]
            while queue and idle:
                key, payload = queue.popleft()
                worker = idle.pop()
                fault = fault_for(key, attempts.get(key, 0)) if fault_for else None
                try:
                    worker.conn.send(("task", payload, fault))
                except (OSError, ValueError):
                    # Died while idle: replace the slot, requeue the task.
                    self._discard(worker, kill=True)
                    idle.append(self._spawn())
                    queue.appendleft((key, payload))
                    continue
                worker.key = key
                worker.payload = payload
                worker.deadline = (
                    now + policy.cell_timeout if policy.cell_timeout is not None else None
                )

            busy = [worker for worker in self._workers if worker.busy]
            if not busy:
                if queue:
                    continue
                # Nothing running, nothing dispatchable: sleep until the
                # earliest backoff expires.
                wake = min(entry[0] for entry in deferred)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            timeout = None
            if deferred:
                timeout = max(0.0, min(entry[0] for entry in deferred) - now)
            deadlines = [worker.deadline for worker in busy if worker.deadline is not None]
            if deadlines:
                until_deadline = max(0.0, min(deadlines) - now)
                timeout = until_deadline if timeout is None else min(timeout, until_deadline)

            waitables = [worker.conn for worker in busy]
            waitables.extend(worker.process.sentinel for worker in busy)
            ready_set = set(_mpconn.wait(waitables, timeout))
            now = time.monotonic()

            for worker in busy:
                outcome = None
                if worker.conn in ready_set:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        outcome = self._lost(worker, attempts, deferred, "crash")
                    else:
                        key = worker.key
                        worker.key = worker.payload = worker.deadline = None
                        if message[0] == "ok":
                            outstanding -= 1
                            yield ("ok", key, message[1])
                            continue
                        raise WorkerTaskError(
                            f"grid cell {key} raised in its worker:\n{message[1]}"
                        )
                elif worker.process.sentinel in ready_set:
                    outcome = self._lost(worker, attempts, deferred, "crash")
                elif worker.deadline is not None and now >= worker.deadline:
                    outcome = self._lost(worker, attempts, deferred, "timeout", kill=True)
                if outcome is not None:
                    outstanding -= 1
                    yield outcome

    def _lost(
        self,
        worker: _Worker,
        attempts: Dict[int, object],
        deferred: List[tuple],
        kind: str,
        kill: bool = False,
    ):
        """Handle a dead/wedged worker: retry its cell or fail it."""

        key, payload = worker.key, worker.payload
        exitcode = worker.process.exitcode
        self._discard(worker, kill=kill)
        if len(self._workers) < self._size:
            self._spawn()
        if kind == "crash":
            self.crashes += 1
        else:
            self.timeouts += 1
        failed = attempts.get(key, 0) + 1
        attempts[key] = failed
        if failed > self.policy.cell_retries:
            if kind == "crash":
                message = f"worker exited with code {exitcode}"
            else:
                message = f"no result within {self.policy.cell_timeout:g}s"
            return ("failed", key, kind, failed, message)
        self.retries += 1
        deferred.append((time.monotonic() + self.policy.backoff(failed), key, payload))
        return None
