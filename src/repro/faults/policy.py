"""Supervision knobs: retry budgets, deadlines, heartbeat cadence.

Two policy shapes, one per process-supervision layer:

* :class:`SupervisionPolicy` — governs the grid worker pool: how many
  times a lost cell is retried, how the backoff between attempts grows,
  and (optionally) how long a single attempt may run before the worker
  is presumed wedged and killed.
* :class:`ShardSupervision` — governs the sharded scenario driver: how
  many times ``run_sharded`` restarts a failed scenario from scratch,
  how long the coordinator waits at a window barrier before declaring a
  silent shard dead, and how often workers heartbeat.

``ShardSupervision`` also has a process-wide default (see
:func:`default_shard_supervision`), because sharded execution is
reached through many call paths (``run_scenario`` delegates to
``run_sharded`` transparently) and threading a supervision parameter
through every scenario entry point would churn the whole API for a
knob that is almost always global anyway (set once by the CLI).
"""

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ShardSupervision",
    "SupervisionPolicy",
    "default_shard_supervision",
    "set_default_shard_supervision",
]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Retry policy for grid cells lost to worker crashes or stalls."""

    #: Retries allowed per cell after its first failed attempt.  A cell
    #: is quarantined as a CellFailure after ``1 + cell_retries``
    #: attempts have died.
    cell_retries: int = 2
    #: First retry delay in seconds; doubles per subsequent attempt.
    backoff_base: float = 0.05
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 2.0
    #: Optional per-attempt wall-clock budget.  A worker that holds a
    #: cell longer is killed and the cell retried (kind="timeout").
    cell_timeout: Optional[float] = None

    def violations(self) -> tuple:
        errors = []
        if self.cell_retries < 0:
            errors.append("cell_retries must be >= 0")
        if self.backoff_base < 0:
            errors.append("backoff_base must be >= 0")
        if self.backoff_cap < self.backoff_base:
            errors.append("backoff_cap must be >= backoff_base")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            errors.append("cell_timeout must be positive")
        return tuple(errors)

    def backoff(self, failed_attempts: int) -> float:
        """Delay before retrying after ``failed_attempts`` failures."""

        if failed_attempts <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (failed_attempts - 1)))


@dataclass(frozen=True)
class ShardSupervision:
    """Restart budget and barrier deadline for sharded scenarios."""

    #: Whole-scenario restarts allowed after a ShardFailure.  Restarts
    #: strip injected faults (the failure already happened); results
    #: stay byte-identical because scenarios are deterministic.
    restarts: int = 1
    #: Seconds the coordinator waits at a window barrier with no
    #: message, heartbeat, or death from a shard before raising
    #: ShardFailure("barrier timeout").  ``None`` disables the deadline:
    #: process sentinels still catch dead shards instantly, so only a
    #: *wedged-but-alive* shard needs the timeout.
    barrier_timeout: Optional[float] = None
    #: Seconds between worker heartbeat frames (liveness evidence for
    #: barrier-timeout diagnostics).
    heartbeat_interval: float = 0.5

    def violations(self) -> tuple:
        errors = []
        if self.restarts < 0:
            errors.append("restarts must be >= 0")
        if self.barrier_timeout is not None and self.barrier_timeout <= 0:
            errors.append("barrier_timeout must be positive")
        if self.heartbeat_interval <= 0:
            errors.append("heartbeat_interval must be positive")
        return tuple(errors)


_DEFAULT_SHARD_SUPERVISION = ShardSupervision()


def default_shard_supervision() -> ShardSupervision:
    """The process-wide supervision used when none is passed explicitly."""

    return _DEFAULT_SHARD_SUPERVISION


def set_default_shard_supervision(supervision: ShardSupervision) -> ShardSupervision:
    """Replace the process-wide default; returns the previous value."""

    global _DEFAULT_SHARD_SUPERVISION
    errors = supervision.violations()
    if errors:
        raise ValueError("; ".join(errors))
    previous = _DEFAULT_SHARD_SUPERVISION
    _DEFAULT_SHARD_SUPERVISION = supervision
    return previous
