"""Injectable wall-clock seam for supervision code.

Deterministic packages (``repro.net``, ``repro.sim``, ...) may not call
``time.time``/``time.monotonic`` directly — the D101 lint rule rejects
it, because wall-clock reads are how nondeterminism sneaks into
simulation results.  Supervision, however, is *about* wall-clock time:
barrier deadlines, heartbeat intervals, retry backoff.

This module is the sanctioned seam between the two worlds.  Supervision
code calls :func:`monotonic`/:func:`sleep` here; the values never feed
into simulation state, only into *when to give up waiting* decisions,
which cannot change a deterministic result — they can only replace an
unbounded hang with a structured failure.
"""

import time

__all__ = ["monotonic", "sleep"]


def monotonic() -> float:
    """A monotonic wall-clock reading, for deadlines and heartbeats."""

    return time.monotonic()


def sleep(seconds: float) -> None:
    """Sleep for ``seconds`` of wall time (stalls, backoff, pacing)."""

    time.sleep(seconds)
