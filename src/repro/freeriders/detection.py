"""Gossip-based freerider auditing.

A decentralized, statistical audit in the spirit of the tracking
protocol the paper announces in §5: every node counts, per peer, how
many packets it *asked* that peer for and how many the peer actually
*served*; it gossips these local audit records; every node accumulates
the gossiped records into global per-peer scores.  A peer whose
aggregate answered/asked ratio stays low across many independent
observers is convicted.

What this catches — and what it cannot:

* **Non-servers** (drop requests) are caught directly: their ratio
  converges to their serve probability while honest nodes, rich or
  poor, eventually answer what they are asked (the three-phase protocol
  only requests what was proposed, and proposals follow capability).
* **Under-claimers** (lie to the aggregation protocol) are *consistent*:
  they are asked little and answer what they are asked, so their ratio
  looks honest.  Their signature is a low contribution *volume* relative
  to the stream they consume — indistinguishable, without bandwidth
  proofs, from an honest poor node.  The detector therefore also exposes
  a contribution index (served/consumed) that callers may threshold,
  with the explicit caveat that it punishes honest poverty alike; the
  benches demonstrate both sides.  This matches the paper's framing of
  freerider tracking as an open problem rather than a solved one.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.membership.view import LocalView
from repro.net.message import register_kind
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

#: Bytes per audit entry (peer id, asked, answered).
_ENTRY_BYTES = 16
#: Fixed header bytes of an audit datagram payload.
_HEADER_BYTES = 8


class AuditReport:
    """[Audit] — a batch of (peer, asked, answered) observations."""

    kind = "audit"
    kind_id = register_kind("audit")
    __slots__ = ("reporter", "entries")

    def __init__(self, reporter: int, entries: List[Tuple[int, int, int]]):
        self.reporter = reporter
        self.entries = entries

    def wire_size(self) -> int:
        return _HEADER_BYTES + _ENTRY_BYTES * len(self.entries)


class PeerScore:
    """Aggregated audit state for one audited peer.

    Holds the latest totals from up to ``max_reporters`` distinct
    reporters (a reporter's newer report replaces its older one, since
    audit counters are cumulative).  The cap bounds memory at
    O(peers x max_reporters) per node.
    """

    __slots__ = ("_by_reporter", "max_reporters")

    def __init__(self, max_reporters: int = 8) -> None:
        self._by_reporter: Dict[int, Tuple[int, int]] = {}
        self.max_reporters = max_reporters

    def update(self, reporter: int, asked: int, answered: int) -> None:
        if (reporter not in self._by_reporter
                and len(self._by_reporter) >= self.max_reporters):
            return
        self._by_reporter[reporter] = (asked, answered)

    @property
    def asked(self) -> int:
        return sum(asked for asked, _ in self._by_reporter.values())

    @property
    def answered(self) -> int:
        return sum(answered for _, answered in self._by_reporter.values())

    @property
    def reporters(self) -> Set[int]:
        return set(self._by_reporter)

    def ratio(self) -> float:
        asked = self.asked
        if asked == 0:
            return 1.0
        return self.answered / asked

    def __repr__(self) -> str:  # pragma: no cover
        return (f"PeerScore(asked={self.asked}, answered={self.answered}, "
                f"reporters={len(self._by_reporter)})")


class FreeriderDetector:
    """One node's auditing agent.

    Local observations come in through :meth:`record_request` /
    :meth:`record_serve` (wired to the gossip node's hooks); the agent
    periodically gossips its most-sampled observations and merges the
    reports it receives into a global score table.
    """

    __slots__ = ("_sim", "_net", "node_id", "_view", "_rng", "fanout",
                 "report_size", "_local", "_global", "reports_sent",
                 "reports_received", "_timer", "_dispatch")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, rng: random.Random, period: float = 1.0,
                 fanout: int = 2, report_size: int = 10):
        if fanout < 1 or report_size < 1:
            raise ValueError("fanout and report_size must be >= 1")
        self._sim = sim
        self._net = net
        self.node_id = node_id
        self._view = view
        self._rng = rng
        self.fanout = fanout
        self.report_size = report_size
        #: Local first-hand observations: peer -> [asked, answered].
        self._local: Dict[int, List[int]] = {}
        #: Global table merged from everyone's gossiped reports.
        self._global: Dict[int, PeerScore] = {}
        self.reports_sent = 0
        self.reports_received = 0
        self._timer = PeriodicTimer(sim, period, self._gossip)
        self._dispatch = {AuditReport.kind_id: self.on_message}

    # ------------------------------------------------------------------
    def start(self, phase: Optional[float] = None) -> None:
        self._timer.start(phase if phase is not None
                          else self._rng.uniform(0, self._timer.period))

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    # first-hand observation hooks
    # ------------------------------------------------------------------
    def record_request(self, peer: int, count: int) -> None:
        self._local.setdefault(peer, [0, 0])[0] += count

    def record_serve(self, peer: int, count: int) -> None:
        entry = self._local.setdefault(peer, [0, 0])
        entry[1] += count
        # Served more than asked can only happen through duplicate serves
        # (retransmission races); clamp so ratios stay in [0, 1].
        if entry[1] > entry[0]:
            entry[1] = entry[0]

    # ------------------------------------------------------------------
    # audit gossip
    # ------------------------------------------------------------------
    def _gossip(self) -> None:
        if not self._local:
            return
        partners = self._view.sample(self.fanout, self._rng)
        if not partners:
            return
        # Report the peers we have the most evidence about.
        ranked = sorted(self._local.items(), key=lambda item: -item[1][0])
        entries = [(peer, asked, answered)
                   for peer, (asked, answered) in ranked[:self.report_size]]
        report = AuditReport(self.node_id, entries)
        self._net.send_many(self.node_id, partners, report)
        self.reports_sent += len(partners)
        # Merge our own evidence as well (we are a reporter too).
        self._merge(self.node_id, entries)

    def dispatch_table(self):
        """Kind-id dispatch: merged into the hosting node's endpoint."""
        return self._dispatch

    def on_message(self, envelope) -> None:
        payload = envelope.payload
        if payload.kind_id != AuditReport.kind_id:
            return
        self.reports_received += 1
        self._merge(payload.reporter, payload.entries)

    def _merge(self, reporter: int, entries: List[Tuple[int, int, int]]) -> None:
        for peer, asked, answered in entries:
            if peer == self.node_id:
                continue
            score = self._global.get(peer)
            if score is None:
                score = PeerScore()
                self._global[peer] = score
            score.update(reporter, asked, answered)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def score_of(self, peer: int) -> Optional[PeerScore]:
        return self._global.get(peer)

    def suspects(self, ratio_threshold: float = 0.5,
                 min_samples: int = 30,
                 min_reporters: int = 3) -> Set[int]:
        """Peers this node would convict of request-dropping."""
        return _suspects(self._global, ratio_threshold, min_samples,
                         min_reporters)

    def snapshot(self) -> "FrozenDetector":
        """A picklable copy of this detector's evidence and verdicts.

        The live detector holds simulator/network/timer references and
        cannot cross a process boundary; sharded execution harvests
        snapshots instead, so merged results answer the same verdict
        queries (:meth:`suspects`, :meth:`score_of`) the serial result's
        live detectors do.
        """
        return FrozenDetector(self.node_id, self.reports_sent,
                              self.reports_received,
                              {peer: list(entry)
                               for peer, entry in self._local.items()},
                              dict(self._global))


class FrozenDetector:
    """Verdict-capable, picklable snapshot of a :class:`FreeriderDetector`.

    Carries the evidence tables (:class:`PeerScore` is plain slotted
    state) and the report counters, and answers the post-run analysis
    surface — :meth:`suspects` / :meth:`score_of` with the same logic as
    the live detector — without the simulation wiring.
    """

    __slots__ = ("node_id", "reports_sent", "reports_received", "_local",
                 "_global")

    def __init__(self, node_id: int, reports_sent: int,
                 reports_received: int, local: Dict[int, List[int]],
                 global_scores: Dict[int, PeerScore]):
        self.node_id = node_id
        self.reports_sent = reports_sent
        self.reports_received = reports_received
        self._local = local
        self._global = global_scores

    def score_of(self, peer: int) -> Optional[PeerScore]:
        return self._global.get(peer)

    def suspects(self, ratio_threshold: float = 0.5,
                 min_samples: int = 30,
                 min_reporters: int = 3) -> Set[int]:
        return _suspects(self._global, ratio_threshold, min_samples,
                         min_reporters)


def _suspects(scores: Dict[int, PeerScore], ratio_threshold: float,
              min_samples: int, min_reporters: int) -> Set[int]:
    """The conviction rule shared by live detectors and snapshots."""
    flagged = set()
    for peer, score in scores.items():
        if (score.asked >= min_samples
                and len(score.reporters) >= min_reporters
                and score.ratio() < ratio_threshold):
            flagged.add(peer)
    return flagged
