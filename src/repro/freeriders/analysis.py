"""Post-run freerider analysis: convictions, accuracy, impact.

Conviction is by quorum: a peer is convicted when at least
``quorum_fraction`` of the surviving honest detectors flag it.  The
accuracy helpers compare convictions against the planted ground truth
(:attr:`ExperimentResult.freerider_ids`); the impact helpers quantify
what freeriding costs the honest population — the degradation the
paper's §5 worries about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.analysis.stats import mean
from repro.experiments.runner import ExperimentResult


def convictions(result: ExperimentResult, ratio_threshold: float = 0.5,
                min_samples: int = 30, min_reporters: int = 3,
                quorum_fraction: float = 0.5) -> Set[int]:
    """Peers convicted by a quorum of honest detectors."""
    if not result.detectors:
        return set()
    freeriders = set(result.freerider_ids)
    honest_detectors = [detector for node_id, detector in result.detectors.items()
                        if node_id not in freeriders
                        and node_id not in result.crash_times]
    if not honest_detectors:
        return set()
    votes: Dict[int, int] = {}
    for detector in honest_detectors:
        for suspect in detector.suspects(ratio_threshold, min_samples,
                                         min_reporters):
            votes[suspect] = votes.get(suspect, 0) + 1
    needed = max(1, int(quorum_fraction * len(honest_detectors)))
    return {peer for peer, count in votes.items() if count >= needed}


@dataclass
class DetectionAccuracy:
    """Precision/recall of a conviction set against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        convicted = self.true_positives + self.false_positives
        if convicted == 0:
            return 1.0
        return self.true_positives / convicted

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return 1.0
        return self.true_positives / actual


def detection_accuracy(result: ExperimentResult,
                       convicted: Set[int]) -> DetectionAccuracy:
    actual = set(result.freerider_ids)
    return DetectionAccuracy(
        true_positives=len(convicted & actual),
        false_positives=len(convicted - actual),
        false_negatives=len(actual - convicted),
    )


def contribution_index(result: ExperimentResult, node_id: int) -> float:
    """Packets served over packets consumed for one node.

    ~1.0 means the node gave as much as it took; under-claimers sit far
    below their capability class's typical value.  Note an honest poor
    node also sits below 1.0 — the ambiguity that makes freerider
    tracking hard (see :mod:`repro.freeriders.detection`).
    """
    node = result.nodes[node_id]
    consumed = node.delivered_count()
    if consumed == 0:
        return 0.0
    return node.packets_served / consumed


def honest_vs_freerider_contribution(result: ExperimentResult) -> Dict[str, float]:
    """Mean contribution index of honest receivers vs freeriders."""
    freeriders = set(result.freerider_ids)
    honest = [contribution_index(result, node_id)
              for node_id in result.receiver_ids() if node_id not in freeriders]
    riders = [contribution_index(result, node_id)
              for node_id in result.receiver_ids() if node_id in freeriders]
    return {
        "honest": mean(honest) if honest else float("nan"),
        "freeriders": mean(riders) if riders else float("nan"),
    }
