"""Freeriding node variants.

Both variants are *rational* freeriders: they keep receiving the stream
normally and deviate only in what they give back.

* :class:`UnderclaimingNode` exploits exactly the channel the paper
  worries about: it advertises ``claim_factor`` of its true capability
  to the aggregation protocol, so HEAP assigns it a small fanout, it
  proposes rarely, gets pulled rarely, and its uplink stays idle — while
  its download is untouched.  Nothing about its *visible* behaviour is
  inconsistent: it behaves exactly like an honest poor node, which is
  what makes the attack attractive (and detection subtle).

* :class:`NonServingNode` deviates at the serve phase instead: it
  proposes honestly (so it keeps being seen as cooperative) but answers
  only ``serve_probability`` of the requests it receives.  This is the
  behaviour the audit protocol of :mod:`repro.freeriders.detection`
  catches directly through answered/asked ratios.
"""

from __future__ import annotations

import random

from repro.core.config import GossipConfig
from repro.core.heap import HeapGossipNode
from repro.core.messages import Request
from repro.membership.view import LocalView
from repro.net.network import Network
from repro.sim.engine import Simulator


class UnderclaimingNode(HeapGossipNode):
    """Advertises ``claim_factor * capability`` to HEAP's aggregation."""

    __slots__ = ("claim_factor", "true_capability_bps")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float, claim_factor: float = 0.1):
        if not 0.0 < claim_factor <= 1.0:
            raise ValueError(f"claim_factor must be in (0, 1], got {claim_factor!r}")
        self.claim_factor = claim_factor
        self.true_capability_bps = capability_bps
        super().__init__(sim, net, node_id, view, config, rng,
                         capability_bps * claim_factor)
        # The uplink itself keeps the true capacity (set by the runner);
        # only the *advertised* capability is a lie.


class NonServingNode(HeapGossipNode):
    """Honest everywhere except the serve phase."""

    __slots__ = ("serve_probability", "requests_dropped")

    def __init__(self, sim: Simulator, net: Network, node_id: int,
                 view: LocalView, config: GossipConfig, rng: random.Random,
                 capability_bps: float, serve_probability: float = 0.2):
        if not 0.0 <= serve_probability <= 1.0:
            raise ValueError(
                f"serve_probability must be in [0, 1], got {serve_probability!r}")
        super().__init__(sim, net, node_id, view, config, rng, capability_bps)
        self.serve_probability = serve_probability
        self.requests_dropped = 0

    def _on_request(self, src: int, request: Request) -> None:
        if self._rng.random() < self.serve_probability:
            super()._on_request(src, request)
        else:
            self.requests_dropped += 1
