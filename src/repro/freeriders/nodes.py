"""DEPRECATED module: the freeriding node variants moved in PR 8.

:class:`UnderclaimingNode` and :class:`NonServingNode` now live in
:mod:`repro.adversary.attacks`, registered in the attack catalog as
``underclaim`` and ``nonserve`` alongside the newer attacks.  This
module re-exports them so existing imports keep working; new code should
import from :mod:`repro.adversary` (and configure them through
``ScenarioConfig.adversary`` / ``AttackMix`` rather than the deprecated
``freerider_*`` fields, which remain as a bit-compatible shim).
"""

from __future__ import annotations

from repro.adversary.attacks import NonServingNode, UnderclaimingNode

__all__ = ["NonServingNode", "UnderclaimingNode"]
