"""Freeriding and freerider tracking.

The paper's §5 identifies HEAP's incentive weakness: "the very fact that
nodes advertise their capabilities may trigger freeriding vocations,
where nodes would pretend to be poor in order not to contribute", and
announces "a freerider-tracking protocol for gossip in order to detect
and punish freeriding behaviors" (their follow-up work, published as
*On Tracking Freeriders in Gossip Protocols*).  This package builds
both sides:

* :mod:`repro.freeriders.nodes` — freeriding node variants: capability
  *under-claimers* (lie to the aggregation protocol) and *non-servers*
  (drop a fraction of the requests they receive).  Since PR 8 these are
  re-exports: the implementations live in the pluggable attack catalog
  (:mod:`repro.adversary`) as the ``underclaim``/``nonserve`` attacks,
  next to the newer ``spam``/``withhold``/``poisoned-view`` ones;
* :mod:`repro.freeriders.detection` — a gossip-based statistical audit:
  nodes score the peers they pull from by answered/asked ratio, gossip
  their local audit reports, and accumulate global suspicion scores that
  separate freeriders from honest-but-poor nodes.
"""

from repro.freeriders.detection import AuditReport, FreeriderDetector, PeerScore
from repro.freeriders.nodes import NonServingNode, UnderclaimingNode

__all__ = [
    "AuditReport",
    "FreeriderDetector",
    "NonServingNode",
    "PeerScore",
    "UnderclaimingNode",
]
