"""Command-line interface.

    python -m repro run --protocol heap --distribution ms-691 --nodes 120
    python -m repro sweep --protocols heap,standard --num-seeds 8 --jobs 4
    python -m repro figure fig5 --scale quick --jobs 4
    python -m repro figure fig9 --scale full --jobs 8 --resume
    python -m repro table table3
    python -m repro ablation retransmission --jobs 4
    python -m repro extension freeriders
    python -m repro lint src/repro --format json
    python -m repro list
    python -m repro serve --port 8642 --checkpoint-dir .repro-service
    python -m repro submit --protocols heap --num-seeds 4 --wait
    python -m repro status j0001
    python -m repro watch j0001

``run`` executes one scenario and prints the headline metrics; ``sweep``
runs a protocol×seed grid through the parallel experiment engine
(``--jobs N`` fans it out over N worker processes — the aggregated output
is byte-identical to ``--jobs 1``, only faster); the other subcommands
regenerate a specific figure/table/ablation/extension and print the same
rows the benches archive.  Figure/table/ablation grids honour ``--jobs``
too (default: the ``REPRO_JOBS`` environment variable), and both those
grids and ``sweep`` checkpoint each finished (scenario, seed) record to
JSONL: ``--checkpoint PATH`` picks the file, ``--resume`` reloads
finished cells after a kill (with a default path derived from the
command when ``--checkpoint`` is omitted).  ``--checkpoint-dir DIR``
instead derives the file inside DIR and adds housekeeping: a
fingerprint-mismatched (stale) checkpoint is garbage-collected rather
than fatal, and the spent checkpoint is deleted after a successful run.
``sweep --csv PATH`` exports every (scenario, seed) record as CSV for
external plotting.  ``lint`` runs the determinism & shard-safety static
analyzer (:mod:`repro.lint`) over the given paths — CI gates on a clean
``src/repro``.  ``serve`` runs the experiment service control plane
(:mod:`repro.service`): a resident HTTP/JSON job manager around the same
engine, with live SSE progress; ``submit``/``status``/``watch`` are its
thin clients.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.stats import mean
from repro.experiments import run_scenario
from repro.experiments import ablations as _ablations
from repro.experiments import extensions as _extensions
from repro.experiments import figures as _figures
from repro.experiments import tables as _tables
from repro.experiments.scales import Scale, _SCALES, current_scale
from repro.metrics import (
    jitter_free_fraction_by_class,
    mean_lag_by_class,
    utilization_by_class,
)
from repro.metrics.lag import lag_cdf_jitter_free
from repro.workloads import CatastrophicFailure, ScenarioConfig, distribution_by_name

FIGURES: Dict[str, Callable] = {
    "fig1": _figures.fig1_unconstrained,
    "fig2": _figures.fig2_fanout_sweep,
    "fig3": _figures.fig3_heap_dist1,
    "fig4": _figures.fig4_bandwidth_usage,
    "fig5": _figures.fig5_quality_ref691,
    "fig6": _figures.fig6_quality_classes,
    "fig7": _figures.fig7_jitter_cdf,
    "fig8": _figures.fig8_lag_by_class,
    "fig9": _figures.fig9_lag_cdf,
    "fig10a": lambda scale=None: _figures.fig10_churn(scale, fraction=0.2),
    "fig10b": lambda scale=None: _figures.fig10_churn(scale, fraction=0.5),
}

TABLES: Dict[str, Callable] = {
    "table1": lambda scale=None: _tables.table1_distributions(),
    "table2": _tables.table2_jittered_delivery,
    "table3": _tables.table3_jitter_free_nodes,
}

ABLATIONS: Dict[str, Callable] = {
    "aggregation": _ablations.ablation_aggregation,
    "retransmission": _ablations.ablation_retransmission,
    "source-bias": _ablations.ablation_source_bias,
    "fanout-cap": _ablations.ablation_fanout_cap,
}

EXTENSIONS: Dict[str, Callable] = {
    "freeriders": _extensions.ext_freeriders,
    "membership": _extensions.ext_membership,
    "discovery": _extensions.ext_capability_discovery,
    "size-estimation": lambda scale=None: _extensions.ext_size_estimation(),
}


def _scale_from_args(args) -> Optional[Scale]:
    if args.scale is None:
        return current_scale()
    return _SCALES[args.scale]


def _adversary_from_args(args):
    """The AttackMix the ``--attacks`` flags describe, or None.

    Only syntax errors are reported here; semantic problems (unknown
    attack names, out-of-range fractions, policy/membership conflicts)
    flow into ``ScenarioConfig.validate``, which reports *all* of them
    in one error.
    """
    if not getattr(args, "attacks", None):
        return None
    from repro.adversary import AttackMix

    return AttackMix.parse(args.attacks,
                           params_text=getattr(args, "attack_params", "") or "",
                           victim_policy=args.victim_policy)


def _fault_plan_from_args(args):
    """The parsed :class:`FaultPlan` the ``--faults`` flag describes,
    or None.  Raises ValueError on bad clause syntax."""
    if not getattr(args, "faults", None):
        return None
    from repro.faults import FaultPlan

    return FaultPlan.parse(args.faults)


def _shard_supervision_from_args(args):
    """Install the ``--barrier-timeout`` / ``--shard-restarts`` flags as
    the process-wide shard supervision; returns the previous value so
    callers can restore it (the CLI is normally one-shot, but tests call
    :func:`main` repeatedly in one process)."""
    from repro.faults import ShardSupervision, set_default_shard_supervision

    return set_default_shard_supervision(ShardSupervision(
        restarts=args.shard_restarts,
        barrier_timeout=args.barrier_timeout))


def _cmd_run(args) -> int:
    churn = None
    if args.churn_fraction > 0:
        churn = CatastrophicFailure(fraction=args.churn_fraction,
                                    at_time=args.churn_time)
    latency_rng = args.latency_rng
    loss_rng = args.loss_rng
    if args.shards > 1:
        if latency_rng is None:
            latency_rng = "per-pair"
        if loss_rng is None:
            loss_rng = "per-pair"
    try:
        adversary = _adversary_from_args(args)
        faults = _fault_plan_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = ScenarioConfig(
        protocol=args.protocol,
        n_nodes=args.nodes,
        duration=args.seconds,
        drain=args.drain,
        seed=args.seed,
        distribution=distribution_by_name(args.distribution),
        loss_rate=args.loss,
        membership=args.membership,
        audit=args.audit,
        capability_discovery=args.discovery,
        adversary=adversary,
        freerider_fraction=args.freerider_fraction,
        freerider_mode=args.freerider_mode,
        churn=churn,
        latency_rng=latency_rng if latency_rng is not None else "shared",
        loss_rng=loss_rng if loss_rng is not None else "shared",
        latency_floor=args.latency_floor,
        shards=args.shards,
        faults=faults,
    )
    try:
        config.validate()
        if faults is not None and (faults.has_cell_faults
                                   or faults.torn_checkpoint is not None):
            raise ValueError(
                "crash-cell/stall-cell/torn-checkpoint faults target sweep "
                "grid cells; `run` only takes shard faults "
                "(shard-exit/shard-stall/drop-wire)")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.faults import ShardFailure, set_default_shard_supervision

    previous = _shard_supervision_from_args(args)
    try:
        result = run_scenario(config)
    except ShardFailure as exc:
        print(f"error: {exc} (restart budget exhausted)", file=sys.stderr)
        return 1
    finally:
        set_default_shard_supervision(previous)
    print(f"{args.protocol} | {args.nodes} nodes | {args.seconds:g}s stream | "
          f"{args.distribution} | seed {args.seed}")
    print(f"events: {result.sim.events_executed:,}")
    print("\njitter-free windows at 10s lag, by class:")
    for label, value in jitter_free_fraction_by_class(result, 10.0).items():
        print(f"  {label:>10}: {value:6.1f}%")
    print("\nmean jitter-free lag, by class:")
    for label, value in mean_lag_by_class(result).items():
        print(f"  {label:>10}: {value:6.2f}s")
    print("\nuplink utilization, by class:")
    for label, value in utilization_by_class(result).items():
        print(f"  {label:>10}: {value:6.1f}%")
    cdf = lag_cdf_jitter_free(result)
    if cdf.finite_fraction() > 0.5:
        print("\nlag percentiles (jitter-free): "
              + ", ".join(f"p{int(q * 100)}={cdf.percentile(q):.2f}s"
                          for q in (0.5, 0.75, 0.9)))
    if result.freerider_ids:
        from repro.freeriders.analysis import convictions, detection_accuracy
        convicted = convictions(result)
        accuracy = detection_accuracy(result, convicted)
        print(f"\nfreeriders: {len(result.freerider_ids)} planted, "
              f"{len(convicted)} convicted "
              f"(precision {accuracy.precision:.2f}, "
              f"recall {accuracy.recall:.2f})")
    if result.attackers:
        from repro.adversary import attack_impact
        impact = attack_impact(result)
        planted = ", ".join(f"{name} x{n}" for name, n
                            in impact["attackers"]["by_attack"].items())
        cost = impact["attacker_cost"]
        print(f"\nattack impact ({planted}):")
        print(f"  delivery: honest {impact['honest']['delivery_pct']:6.1f}% | "
              f"attacked {impact['attacked']['delivery_pct']:6.1f}% | "
              f"delta {impact['delta']['delivery_pct']:+.1f}pp")
        print(f"  mean lag: honest {impact['honest']['mean_lag']:6.2f}s | "
              f"attacked {impact['attacked']['mean_lag']:6.2f}s | "
              f"delta {impact['delta']['mean_lag']:+.2f}s")
        print(f"  attacker cost: {cost['mean_served']:.1f} pkts served "
              f"(honest mean {cost['honest_mean_served']:.1f}); "
              f"counters {cost['counters'] or '{}'}")
    return 0


def _sweep_spec_from_args(args):
    """The sweep's declarative :class:`SweepSpec`.

    The service control plane builds the identical value from an HTTP
    request body, so ``repro sweep`` and a submitted ``sweep`` job run
    the same experiment cell for cell.
    """
    from repro.experiments.specs import SweepSpec

    return SweepSpec.from_params({
        "protocols": args.protocols,
        "nodes": args.nodes,
        "seconds": args.seconds,
        "drain": args.drain,
        "distribution": args.distribution,
        "loss": args.loss,
        "seeds": args.seeds,
        "base_seed": args.base_seed,
        "num_seeds": args.num_seeds,
        "audit": args.audit,
        "attacks": args.attacks,
        "attack_params": args.attack_params,
        "victim_policy": args.victim_policy,
        "shards": args.shards,
        "latency_rng": args.latency_rng,
        "loss_rng": args.loss_rng,
        "latency_floor": args.latency_floor,
        "faults": args.faults,
    })


def _cmd_sweep(args) -> int:
    from repro.experiments.parallel import (CheckpointError, ProgressEvent,
                                            run_grid)

    try:
        spec = _sweep_spec_from_args(args)
        # Scenario-level problems (unknown attacks, shard/rng conflicts)
        # are all collected into one ValueError here.
        configs = spec.configs()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    seeds = spec.seed_list()
    jobs = args.jobs
    if spec.shards > 1 and jobs > 1:
        # A sharded cell spawns its own worker processes; running it
        # inside a (daemonic) pool worker would silently fall back to
        # the in-process shard driver.  Grid- and intra-scenario
        # parallelism don't compose yet — prefer the explicit request.
        print("note: --shards > 1 runs cells serially (--jobs ignored)",
              file=sys.stderr)
        jobs = 1

    def progress(event: ProgressEvent) -> None:
        if not args.quiet:
            record = event.record
            print(f"\r[{event.done}/{event.total}] {record.scenario_name} "
                  f"seed={record.seed} "
                  f"({record.events_executed:,} events, "
                  f"{record.wall_time:.2f}s)",
                  file=sys.stderr, end="", flush=True)

    checkpoint = _checkpoint_path(args, "sweep", args.distribution)
    from repro.faults import (ShardFailure, SupervisionPolicy,
                              set_default_shard_supervision)

    supervision = SupervisionPolicy(cell_retries=args.cell_retries)
    previous = _shard_supervision_from_args(args)
    try:
        grid = run_grid(configs, seeds, spec.metrics(), jobs=jobs,
                        progress=progress,
                        checkpoint=checkpoint, resume=args.resume,
                        checkpoint_gc=_managed_checkpoint(args),
                        faults=spec.fault_plan(), supervision=supervision)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # e.g. a fault plan the execution mode cannot host
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ShardFailure as exc:
        print(f"error: {exc} (restart budget exhausted)", file=sys.stderr)
        return 1
    finally:
        set_default_shard_supervision(previous)
    if grid.cell_retries:
        # Pinned phrasing: the CI chaos-smoke job greps for it.
        print(f"supervision: recovered {grid.cell_retries} lost cell "
              f"attempt(s)", file=sys.stderr)
    if grid.failures:
        print(f"supervision: quarantined {len(grid.failures)} cell(s) "
              f"after exhausting retries", file=sys.stderr)
    if not args.quiet:
        print(file=sys.stderr)
        print(f"grid of {len(configs)} scenario(s) x {len(seeds)} seed(s) "
              f"with --jobs {jobs}: {grid.wall_time:.2f}s wall",
              file=sys.stderr)
    if args.csv:
        from repro.metrics.export import write_grid_csv

        rows = write_grid_csv(args.csv, grid)
        if not args.quiet:
            print(f"wrote {rows} record row(s) to {args.csv}",
                  file=sys.stderr)
    # Aggregates go to stdout and are byte-identical for any --jobs value.
    print(grid.render())
    return 0


def _managed_checkpoint(args) -> bool:
    """Housekeeping applies only to checkpoints *derived* from
    ``--checkpoint-dir`` — never to a file the user named explicitly
    with ``--checkpoint``, which must keep the fail-loud semantics."""
    return (bool(getattr(args, "checkpoint_dir", None))
            and not getattr(args, "checkpoint", None))


def _checkpoint_path(args, command: str, name: str) -> Optional[str]:
    """The JSONL checkpoint for this invocation, if any.

    ``--checkpoint PATH`` names it explicitly; ``--checkpoint-dir DIR``
    derives a stable per-artifact file *inside DIR* and turns on
    checkpoint housekeeping (stale/mismatched files are GC'd instead of
    fatal, spent ones deleted after a successful run); ``--resume`` alone
    derives the same default name under ``.repro-checkpoints`` so the
    natural kill/rerun workflow (`figure fig9 --resume` twice) just
    works.  The default is keyed by the *resolved* scale, so
    ``REPRO_SCALE=quick`` and ``REPRO_SCALE=full`` runs never collide on
    one file.
    """
    if args.checkpoint:
        return args.checkpoint
    scale = getattr(args, "scale", None) or current_scale().name
    if getattr(args, "checkpoint_dir", None):
        return os.path.join(args.checkpoint_dir,
                            f"{command}-{name}-{scale}.jsonl")
    if args.resume:
        return os.path.join(".repro-checkpoints",
                            f"{command}-{name}-{scale}.jsonl")
    return None


def _cmd_render(registry: Dict[str, Callable], command: str, name: str,
                args) -> int:
    from repro.experiments import gridrun
    from repro.experiments.parallel import CheckpointError

    try:
        fn = registry[name]
    except KeyError:
        print(f"unknown id {name!r}; known: {', '.join(sorted(registry))}",
              file=sys.stderr)
        return 2
    saved = vars(gridrun.current_options()).copy()
    jobs = getattr(args, "jobs", None)
    shards = getattr(args, "shards", 0) or 0
    if shards > 1 and (jobs or gridrun.default_jobs()) > 1:
        print("note: --shards > 1 runs cells serially (--jobs ignored)",
              file=sys.stderr)
        jobs = 1
    gridrun.configure(
        jobs=jobs if jobs is not None else gridrun.default_jobs(),
        checkpoint=(_checkpoint_path(args, command, name)
                    if hasattr(args, "checkpoint") else None),
        resume=getattr(args, "resume", False),
        checkpoint_gc=_managed_checkpoint(args),
        shards=shards,
        latency_floor=getattr(args, "latency_floor", None),
        progress=(None if getattr(args, "quiet", True)
                  else gridrun.stderr_progress))
    try:
        result = fn(_scale_from_args(args))
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # e.g. an invalid scenario override reaching validation
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        gridrun.configure(**saved)
    csv_path = getattr(args, "csv", None)
    if csv_path:
        from repro.metrics.export import write_result_csv

        rows = write_result_csv(csv_path, result)
        if not getattr(args, "quiet", True):
            print(f"wrote {rows} row(s) to {csv_path}", file=sys.stderr)
    print(result.render())
    return 0


def _cmd_list(args) -> int:
    print("figures:    " + " ".join(sorted(FIGURES)))
    print("tables:     " + " ".join(sorted(TABLES)))
    print("ablations:  " + " ".join(sorted(ABLATIONS)))
    print("extensions: " + " ".join(sorted(EXTENSIONS)))
    print("scales:     " + " ".join(sorted(_SCALES)))
    return 0


def _cmd_attacks(args) -> int:
    """``repro attacks --list``: print the attack catalog."""
    from repro.adversary import PLACEMENT_POLICIES, attack_catalog

    if args.format == "json":
        # One schema for every transport: this is byte-for-byte the
        # payload the service serves at GET /v1/catalog/attacks.
        import json

        from repro.adversary import catalog_jsonable

        print(json.dumps(catalog_jsonable(), indent=2))
        return 0
    rows = [("name", "role", "param", "channel exploited", "detection story")]
    rows += [(entry.name, entry.role,
              f"{entry.default_param:g} ({entry.param_doc})",
              entry.channel, entry.detection)
             for entry in attack_catalog()]
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    for name, role, param, channel, detection in rows:
        print(f"{name:<{widths[0]}}  {role:<{widths[1]}}  "
              f"{param:<{widths[2]}}  {channel}")
        if args.verbose and detection != "detection story":
            print(f"{'':<{widths[0]}}  {'':<{widths[1]}}  "
                  f"{'':<{widths[2]}}  detection: {detection}")
    print(f"\nvictim policies: {', '.join(PLACEMENT_POLICIES)}")
    print("usage: sweep --attacks spam=0.1,withhold=0.05 "
          "--victim-policy high-degree [--attack-params spam=0.5]")
    return 0


#: Where `submit`/`status`/`watch` look for the service by default
#: (= `repro serve`'s default bind).
_DEFAULT_SERVICE_URL = "http://127.0.0.1:8642"


def _cmd_serve(args) -> int:
    """Run the experiment service control plane in the foreground."""
    from repro.service import ExperimentService, JobManager

    manager = JobManager(checkpoint_dir=args.checkpoint_dir,
                         executors=args.jobs,
                         queue_size=args.queue_size,
                         grid_jobs=args.grid_jobs,
                         job_ttl=args.job_ttl,
                         job_timeout=args.job_timeout)
    service = ExperimentService(manager, host=args.host, port=args.port,
                                quiet=args.quiet)
    print(f"repro service on {service.url} "
          f"(executors: {args.jobs}, checkpoint dir: {args.checkpoint_dir})",
          file=sys.stderr, flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        # Unfinished jobs keep their managed checkpoints on disk, so a
        # restarted service resumes resubmitted specs.
        service.close()
    return 0


def _submit_params(args) -> Dict[str, object]:
    """Sweep/run parameters the user actually set (``None`` = defer to
    the server's defaults — which are the ``sweep`` CLI defaults)."""
    names = ("protocols", "nodes", "seconds", "drain", "distribution",
             "loss", "seeds", "base_seed", "num_seeds", "attacks",
             "attack_params", "victim_policy", "shards", "latency_rng",
             "loss_rng", "latency_floor", "faults")
    params: Dict[str, object] = {
        name: getattr(args, name) for name in names
        if getattr(args, name) is not None}
    if args.audit:
        params["audit"] = True
    return params


def _follow_job(client, job_id: str, quiet: bool = False) -> str:
    """Stream a job's events to stderr; returns its terminal state."""
    state = "unknown"
    for event in client.events(job_id):
        if event["type"] == "state":
            state = event["state"]
            if not quiet:
                print(f"{job_id}: {state}", file=sys.stderr)
        elif event["type"] == "progress" and not quiet:
            tag = " (restored)" if event.get("restored") else ""
            print(f"  [{event['done']}/{event['total']}] "
                  f"{event['scenario_name']} seed={event['seed']} "
                  f"({event['events_executed']:,} events, "
                  f"{event['events_per_sec']:,.0f} ev/s){tag}",
                  file=sys.stderr)
    return state


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    if args.kind in ("figure", "table", "ablation"):
        if not args.id:
            print(f"error: --kind {args.kind} needs --id", file=sys.stderr)
            return 2
        params: Dict[str, object] = {"id": args.id}
        if args.scale is not None:
            params["scale"] = args.scale
        if args.shards is not None:
            params["shards"] = args.shards
        if args.latency_floor is not None:
            params["latency_floor"] = args.latency_floor
    else:
        params = _submit_params(args)
    try:
        resp = client.submit(args.kind, params)
        job = resp["job"]
        if not args.quiet:
            verb = "submitted" if resp["created"] else "joined"
            print(f"{verb} {job['id']} ({job['kind']}, "
                  f"state: {job['state']})", file=sys.stderr)
        if not args.wait:
            print(job["id"])
            return 0
        state = _follow_job(client, job["id"], quiet=args.quiet)
        if state != "done":
            final = client.job(job["id"])
            print(f"error: job {job['id']} {state}"
                  + (f": {final['error']}" if final.get("error") else ""),
                  file=sys.stderr)
            return 1
        if args.csv:
            with open(args.csv, "w", encoding="utf-8", newline="") as fh:
                fh.write(client.csv(job["id"]))
            if not args.quiet:
                print(f"wrote {args.csv}", file=sys.stderr)
        # The deterministic aggregate render, byte-identical to running
        # the same spec through `repro sweep` / `repro <kind> <id>`.
        print(client.result(job["id"])["result"]["render"])
        return 0
    except ServiceError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 2


def _cmd_status(args) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job_id is None:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
                return 0
            for job in jobs:
                cells = job["cells"]
                total = cells["total"] if cells["total"] is not None else "?"
                print(f"{job['id']}  {job['state']:<9} {job['kind']:<8} "
                      f"{cells['done']}/{total} cells  "
                      f"fp={job['fingerprint']}")
            return 0
        if args.csv:
            with open(args.csv, "w", encoding="utf-8", newline="") as fh:
                fh.write(client.csv(args.job_id))
            print(f"wrote {args.csv}", file=sys.stderr)
            return 0
        print(json.dumps(client.job(args.job_id), indent=2))
        return 0
    except ServiceError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 2


def _cmd_watch(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        state = _follow_job(client, args.job_id)
        if state == "done":
            print(client.result(args.job_id)["result"]["render"])
            return 0
        job = client.job(args.job_id)
        print(f"error: job {args.job_id} {state}"
              + (f": {job['error']}" if job.get("error") else ""),
              file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 2


def _add_attack_args(parser) -> None:
    """Adversary knobs shared by ``run`` and ``sweep``."""
    parser.add_argument("--attacks", default=None, metavar="NAME=FRAC,...",
                        help="plant an attack mix: comma-separated "
                             "name=fraction pairs (fractions of the "
                             "receiver population; see `repro attacks "
                             "--list` for the catalog)")
    parser.add_argument("--attack-params", default=None,
                        metavar="NAME=VALUE,...",
                        help="override attack parameters (defaults come "
                             "from the catalog)")
    parser.add_argument("--victim-policy", default="random",
                        help="where the attackers sit: random, "
                             "high-degree, edge, or clustered")


def _add_shard_args(parser) -> None:
    """Sharded-execution knobs shared by ``run`` and ``sweep``."""
    parser.add_argument("--shards", type=int, default=0,
                        help="partition the node population across N "
                             "worker shards (0/1 = in-process; N > 1 "
                             "implies --latency-rng/--loss-rng per-pair "
                             "and produces results identical to the "
                             "*per-pair* serial run — not to the "
                             "default shared-stream mode)")
    parser.add_argument("--latency-rng", choices=("shared", "per-pair"),
                        default=None,
                        help="latency randomness mode: 'shared' (one "
                             "stream in global send order, the default) "
                             "or 'per-pair' (independent per-link "
                             "streams, required for --shards > 1)")
    parser.add_argument("--loss-rng", choices=("shared", "per-pair"),
                        default=None,
                        help="loss randomness mode: 'shared' (one "
                             "stream in global send order, the default) "
                             "or 'per-pair' (independent per-link "
                             "Bernoulli trials, required for "
                             "--shards > 1 with --loss > 0)")
    parser.add_argument("--latency-floor", type=float, default=0.002,
                        help="hard lower bound on pairwise latency, "
                             "seconds; doubles as the sharded lookahead "
                             "(default 0.002)")


def _add_fault_args(parser, cell_retries: bool = False) -> None:
    """Chaos-testing knobs shared by ``run`` and ``sweep``."""
    parser.add_argument("--faults", default=None, metavar="CLAUSE,...",
                        help="deterministic fault injection: comma-"
                             "separated clauses (crash-cell=K[xN], "
                             "stall-cell=K:SECS, shard-exit=S@W, "
                             "shard-stall=S@W:SECS, drop-wire=S@W, "
                             "torn-checkpoint=N); recovered runs are "
                             "byte-identical to clean ones")
    parser.add_argument("--barrier-timeout", type=float, default=None,
                        metavar="SECS",
                        help="shard window-barrier deadline: a shard "
                             "that sends nothing for SECS fails the "
                             "scenario with a structured ShardFailure "
                             "instead of deadlocking (default: no "
                             "deadline, crash detection only)")
    parser.add_argument("--shard-restarts", type=int, default=1,
                        help="times a scenario that lost a shard is "
                             "restarted before the ShardFailure "
                             "propagates (default 1)")
    if cell_retries:
        parser.add_argument("--cell-retries", type=int, default=2,
                            help="times a grid cell lost to a worker "
                                 "crash is retried on a fresh worker "
                                 "before being quarantined as a "
                                 "CellFailure (default 2)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HEAP (Heterogeneous Gossip) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("--protocol", choices=("heap", "standard", "tree"),
                            default="heap")
    run_parser.add_argument("--nodes", type=int, default=100)
    run_parser.add_argument("--seconds", type=float, default=20.0)
    run_parser.add_argument("--drain", type=float, default=40.0)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--distribution", default="ref-691")
    run_parser.add_argument("--loss", type=float, default=0.0)
    run_parser.add_argument("--membership", choices=("directory", "cyclon"),
                            default="directory")
    run_parser.add_argument("--audit", action="store_true")
    run_parser.add_argument("--discovery", action="store_true",
                            help="slow-start capability discovery")
    run_parser.add_argument("--freerider-fraction", type=float, default=0.0)
    run_parser.add_argument("--freerider-mode",
                            choices=("underclaim", "nonserve"),
                            default="underclaim")
    run_parser.add_argument("--churn-fraction", type=float, default=0.0)
    run_parser.add_argument("--churn-time", type=float, default=60.0)
    _add_attack_args(run_parser)
    _add_shard_args(run_parser)
    _add_fault_args(run_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="run a protocol x seed grid (parallel with --jobs)")
    sweep_parser.add_argument("--protocols", default="heap,standard",
                              help="comma-separated protocol list")
    sweep_parser.add_argument("--nodes", type=int, default=100)
    sweep_parser.add_argument("--seconds", type=float, default=20.0)
    sweep_parser.add_argument("--drain", type=float, default=40.0)
    sweep_parser.add_argument("--distribution", default="ref-691")
    sweep_parser.add_argument("--loss", type=float, default=0.0)
    sweep_parser.add_argument("--seeds", default=None,
                              help="explicit comma-separated seed list")
    sweep_parser.add_argument("--base-seed", type=int, default=1)
    sweep_parser.add_argument("--num-seeds", type=int, default=8)
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes (1 = serial; results "
                                   "are identical for any value)")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress progress output on stderr")
    sweep_parser.add_argument("--checkpoint", default=None,
                              help="JSONL file recording each finished "
                                   "(scenario, seed) record")
    sweep_parser.add_argument("--checkpoint-dir", default=None,
                              help="directory for a derived checkpoint "
                                   "file, with housekeeping: stale or "
                                   "fingerprint-mismatched checkpoints "
                                   "are GC'd, spent ones deleted after "
                                   "a successful run")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="reload finished cells from the "
                                   "checkpoint instead of recomputing")
    sweep_parser.add_argument("--csv", default=None, metavar="PATH",
                              help="export every (scenario, seed) record "
                                   "as CSV for external plotting")
    sweep_parser.add_argument("--audit", action="store_true",
                              help="run the gossip-based freerider audit "
                                   "on every node (enables conviction "
                                   "columns in attack sweeps)")
    _add_attack_args(sweep_parser)
    _add_shard_args(sweep_parser)
    _add_fault_args(sweep_parser, cell_retries=True)

    for command, registry in (("figure", FIGURES), ("table", TABLES),
                              ("ablation", ABLATIONS),
                              ("extension", EXTENSIONS)):
        p = sub.add_parser(command, help=f"regenerate a {command}")
        p.add_argument("id", help=f"one of: {', '.join(sorted(registry))}")
        p.add_argument("--scale", choices=sorted(_SCALES), default=None)
        if command == "extension":
            # Extensions run bespoke study loops, not the grid pipeline:
            # advertising grid flags they'd silently ignore would lie.
            continue
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the scenario grid "
                            "(default: REPRO_JOBS or 1; output is "
                            "identical for any value)")
        p.add_argument("--checkpoint", default=None,
                       help="JSONL checkpoint for the scenario grid")
        p.add_argument("--checkpoint-dir", default=None,
                       help="directory for a derived checkpoint file, "
                            "with GC of stale/mismatched checkpoints")
        p.add_argument("--resume", action="store_true",
                       help="resume the grid from its checkpoint")
        p.add_argument("--quiet", action="store_true",
                       help="suppress progress output on stderr")
        p.add_argument("--csv", default=None, metavar="PATH",
                       help="export the rendered rows as CSV "
                            "(mirrors sweep --csv)")
        p.add_argument("--shards", type=int, default=0,
                       help="run each scenario under the sharded "
                            "execution model: per-pair latency and loss "
                            "streams, partitioned across N worker "
                            "shards when N > 1 (output is identical "
                            "for any N >= 1)")
        p.add_argument("--latency-floor", type=float, default=None,
                       help="with --shards: override the scenarios' "
                            "latency floor (= the shard lookahead; "
                            "larger means fewer window barriers)")

    attacks_parser = sub.add_parser(
        "attacks", help="list the adversarial attack catalog")
    attacks_parser.add_argument("--list", action="store_true",
                                help="print the catalog (the default)")
    attacks_parser.add_argument("--verbose", action="store_true",
                                help="include each attack's detection story")
    attacks_parser.add_argument("--format", choices=("text", "json"),
                                default="text",
                                help="json prints the same payload the "
                                     "service serves at "
                                     "GET /v1/catalog/attacks")

    serve_parser = sub.add_parser(
        "serve", help="run the experiment service control plane")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642,
                              help="listen port (0 = ephemeral; default "
                                   "8642)")
    serve_parser.add_argument("--jobs", type=int, default=1,
                              help="executor threads (concurrent jobs)")
    serve_parser.add_argument("--grid-jobs", type=int, default=1,
                              help="worker processes per grid job (1 = "
                                   "serial, which keeps the shared "
                                   "result cache warm)")
    serve_parser.add_argument("--queue-size", type=int, default=16,
                              help="bounded submission queue (full = "
                                   "HTTP 503)")
    serve_parser.add_argument("--checkpoint-dir", default=".repro-service",
                              help="managed checkpoints + CSV artifacts; "
                                   "cancelled/crashed jobs resubmitted "
                                   "with the same spec resume from here")
    serve_parser.add_argument("--job-ttl", type=float, default=None,
                              metavar="SECS",
                              help="evict terminal jobs (and their SSE "
                                   "buffers and CSV artifacts — not "
                                   "their checkpoints) SECS after they "
                                   "finish; evicted ids answer 404 with "
                                   "the eviction reason (default: keep "
                                   "forever)")
    serve_parser.add_argument("--job-timeout", type=float, default=None,
                              metavar="SECS",
                              help="watchdog: a running job that makes "
                                   "no progress for SECS is failed and "
                                   "its executor slot freed (default: "
                                   "no watchdog)")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-request access logs")

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a running service")
    submit_parser.add_argument("--url", default=_DEFAULT_SERVICE_URL)
    submit_parser.add_argument("--kind", default="sweep",
                               choices=("run", "sweep", "figure", "table",
                                        "ablation"))
    submit_parser.add_argument("--id", default=None,
                               help="artifact id for figure/table/ablation "
                                    "kinds")
    submit_parser.add_argument("--scale", choices=sorted(_SCALES),
                               default=None)
    submit_parser.add_argument("--wait", action="store_true",
                               help="stream progress and print the final "
                                    "render (exactly the CLI's output for "
                                    "the same spec)")
    submit_parser.add_argument("--csv", default=None, metavar="PATH",
                               help="with --wait: save the job's CSV "
                                    "artifact here")
    submit_parser.add_argument("--quiet", action="store_true")
    # Sweep parameters: defaults stay None so the server (whose defaults
    # are the `sweep` CLI defaults) fills in whatever the user omitted.
    submit_parser.add_argument("--protocols", default=None)
    submit_parser.add_argument("--nodes", type=int, default=None)
    submit_parser.add_argument("--seconds", type=float, default=None)
    submit_parser.add_argument("--drain", type=float, default=None)
    submit_parser.add_argument("--distribution", default=None)
    submit_parser.add_argument("--loss", type=float, default=None)
    submit_parser.add_argument("--seeds", default=None)
    submit_parser.add_argument("--base-seed", type=int, default=None)
    submit_parser.add_argument("--num-seeds", type=int, default=None)
    submit_parser.add_argument("--audit", action="store_true")
    submit_parser.add_argument("--attacks", default=None,
                               metavar="NAME=FRAC,...")
    submit_parser.add_argument("--attack-params", default=None,
                               metavar="NAME=VALUE,...")
    submit_parser.add_argument("--victim-policy", default=None)
    submit_parser.add_argument("--shards", type=int, default=None)
    submit_parser.add_argument("--latency-rng",
                               choices=("shared", "per-pair"), default=None)
    submit_parser.add_argument("--loss-rng",
                               choices=("shared", "per-pair"), default=None)
    submit_parser.add_argument("--latency-floor", type=float, default=None)
    submit_parser.add_argument("--faults", default=None,
                               metavar="CLAUSE,...",
                               help="deterministic fault injection "
                                    "clauses (see `sweep --faults`)")

    status_parser = sub.add_parser(
        "status", help="list service jobs, or show one job's status")
    status_parser.add_argument("job_id", nargs="?", default=None)
    status_parser.add_argument("--url", default=_DEFAULT_SERVICE_URL)
    status_parser.add_argument("--csv", default=None, metavar="PATH",
                               help="fetch the job's CSV artifact to PATH")

    watch_parser = sub.add_parser(
        "watch", help="stream a job's live progress (SSE)")
    watch_parser.add_argument("job_id")
    watch_parser.add_argument("--url", default=_DEFAULT_SERVICE_URL)

    lint_parser = sub.add_parser(
        "lint", help="determinism & shard-safety static analyzer")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(lint_parser)

    sub.add_parser("list", help="list available experiment ids")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "figure":
        return _cmd_render(FIGURES, "figure", args.id, args)
    if args.command == "table":
        return _cmd_render(TABLES, "table", args.id, args)
    if args.command == "ablation":
        return _cmd_render(ABLATIONS, "ablation", args.id, args)
    if args.command == "extension":
        return _cmd_render(EXTENSIONS, "extension", args.id, args)
    if args.command == "attacks":
        return _cmd_attacks(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint
        return run_lint(args)
    if args.command == "list":
        return _cmd_list(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
